"""Static auditor for synthesized pipeline kernels.

The compiled engine (:mod:`repro.engine.compiled`, DESIGN.md §11)
generates kernel source with string templates and runs it through
``compile()``/``exec``.  The generator is supposed to confine kernels
to a tiny, closed contract; this module *verifies* that contract by
parsing every kernel with :mod:`ast` before it runs — closing the
trust gap between "the templates look right" and "the emitted code is
right", and catching template regressions (an unguarded filter stage,
a leaked name, an out-of-range const slot) at the moment of synthesis
with a precise message instead of as a downstream wrong answer.

The audited contract (see DESIGN.md §12):

* the module defines exactly one function, ``_kernel(source, C, ctx)``
  — no other top-level statements, no defaults/varargs;
* only whitelisted statement forms appear (straight-line assignments,
  ``for``/``if``/``try``-``finally``, ``yield``, ``break``/
  ``continue``/``pass``) — no imports, nested functions, lambdas,
  classes, ``global``/``nonlocal``, ``with``, ``while``, or deletes;
* every loaded name is a parameter, a locally assigned variable, or
  one of the three runtime helpers (``_compact``, ``_acc``,
  ``_emit``); notably **no builtins** and no ``eval``/``exec``/
  ``__import__`` can even be named;
* attribute access is restricted to ``ctx.state_add`` /
  ``ctx.state_remove`` in call position — no attribute escapes
  (``ctx.store``, dunder traversal) are possible;
* every subscript of the consts tuple ``C`` is a literal ``int``
  within range — kernels cannot index consts dynamically;
* every filter/predicate stage (``cols, n = _compact(...)``) is
  immediately followed by the ``if not n: continue`` guard, so no
  downstream stage ever consumes an unmasked or stale lane count;
* state accounting pairs up: a kernel that calls ``ctx.state_add``
  must release in its ``finally`` via ``ctx.state_remove``;
* kernels cached cross-context (``_KERNEL_CACHE``) must be genuinely
  closure-free of the current execution: no const closure may capture
  the :class:`RunContext` or its correlation env
  (:func:`audit_consts`), which is what makes sharing them sound.

Armed on every compile when ``OptimizerConfig(validate_plans=True)``
(so the differential fuzzer audits every kernel it executes) and
runnable standalone over the 32-query workload via
``repro audit-kernels``.
"""

from __future__ import annotations

import ast

from repro.errors import KernelAuditError

#: The only global names a kernel may load.
ALLOWED_GLOBALS = frozenset({"_compact", "_acc", "_emit"})

#: The exact parameter list of every kernel.
KERNEL_PARAMS = ("source", "C", "ctx")

#: Attributes a kernel may access, all on ``ctx`` and only to call.
ALLOWED_CTX_ATTRS = frozenset({"state_add", "state_remove"})

_ALLOWED_STATEMENTS = (
    ast.Assign,
    ast.AugAssign,
    ast.Expr,
    ast.For,
    ast.If,
    ast.Try,
    ast.Break,
    ast.Continue,
    ast.Pass,
)

_FORBIDDEN_EXPRESSIONS = (
    ast.Lambda,
    ast.Await,
    ast.NamedExpr,
    ast.Starred,
    ast.FormattedValue,
    ast.JoinedStr,
    ast.GeneratorExp,
    ast.DictComp,
    ast.SetComp,
)


def _fail(message: str) -> None:
    raise KernelAuditError(f"kernel audit: {message}")


def audit_kernel(source_text: str, n_consts: int) -> None:
    """Statically verify one synthesized kernel's source.

    Raises :class:`~repro.errors.KernelAuditError` naming the first
    violated clause; returns None when the kernel satisfies the whole
    contract.
    """
    try:
        module = ast.parse(source_text)
    except SyntaxError as exc:  # pragma: no cover - compile() runs first
        _fail(f"synthesized source does not parse: {exc}")

    if len(module.body) != 1 or not isinstance(module.body[0], ast.FunctionDef):
        _fail("module must contain exactly one function definition")
    fn = module.body[0]
    if fn.name != "_kernel":
        _fail(f"kernel function is named {fn.name!r}, expected '_kernel'")
    args = fn.args
    if (
        tuple(a.arg for a in args.args) != KERNEL_PARAMS
        or args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or args.defaults
        or args.kw_defaults
    ):
        _fail(
            "kernel signature must be exactly _kernel(source, C, ctx) "
            "with no defaults or var-args"
        )
    if fn.decorator_list:
        _fail("kernel must not be decorated")

    assigned = set(KERNEL_PARAMS)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            assigned.add(node.id)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    assigned.add(target.id)

    state_added = False
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            _fail("kernel must not define nested functions")
        if isinstance(node, (ast.ClassDef, ast.Import, ast.ImportFrom)):
            _fail(f"forbidden statement {type(node).__name__}")
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            _fail(f"forbidden scope statement {type(node).__name__}")
        if isinstance(node, (ast.While, ast.With, ast.AsyncWith, ast.Raise, ast.Delete)):
            _fail(f"forbidden statement {type(node).__name__}")
        if isinstance(node, _FORBIDDEN_EXPRESSIONS):
            _fail(f"forbidden expression {type(node).__name__}")
        if isinstance(node, ast.stmt) and not isinstance(
            node, _ALLOWED_STATEMENTS + (ast.FunctionDef,)
        ):
            _fail(f"statement {type(node).__name__} is not in the kernel grammar")
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in assigned and node.id not in ALLOWED_GLOBALS:
                _fail(
                    f"free name {node.id!r} is outside the kernel namespace "
                    f"(params, locals, {sorted(ALLOWED_GLOBALS)})"
                )
        if isinstance(node, ast.Attribute):
            base = node.value
            if (
                not isinstance(base, ast.Name)
                or base.id != "ctx"
                or node.attr not in ALLOWED_CTX_ATTRS
                or not isinstance(node.ctx, ast.Load)
            ):
                _fail(
                    f"attribute access {ast.unparse(node)!r} outside the "
                    f"ctx.state_add/ctx.state_remove allowlist"
                )
            if node.attr == "state_add":
                state_added = True
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "C":
                index = node.slice
                if (
                    not isinstance(index, ast.Constant)
                    or not isinstance(index.value, int)
                    or isinstance(index.value, bool)
                ):
                    _fail(
                        f"consts subscript {ast.unparse(node)!r} must use a "
                        f"literal int index"
                    )
                if not 0 <= index.value < n_consts:
                    _fail(
                        f"consts index {index.value} out of range "
                        f"[0, {n_consts})"
                    )
                if not isinstance(node.ctx, ast.Load):
                    _fail("consts tuple C must not be written")

    _check_structure(fn, state_added)
    _check_compact_guards(fn)


def _check_structure(fn: ast.FunctionDef, state_added: bool) -> None:
    """The kernel skeleton: prologue assignments, then one
    try/finally whose body is a single ``for`` over ``source`` (plus
    the aggregate epilogue), with state release in the finally."""
    trys = [node for node in fn.body if isinstance(node, ast.Try)]
    if len(trys) != 1 or trys[0] is not fn.body[-1]:
        _fail("kernel body must end with exactly one try/finally")
    guard = trys[0]
    if guard.handlers or guard.orelse or not guard.finalbody:
        _fail("kernel try must have a finally and no except/else")
    for stmt in fn.body[:-1]:
        if not isinstance(stmt, ast.Assign):
            _fail("kernel prologue may only contain assignments")
    loops = [node for node in guard.body if isinstance(node, ast.For)]
    if len(loops) != 1 or loops[0] is not guard.body[0]:
        _fail("kernel try body must start with the single source loop")
    loop = loops[0]
    if not (isinstance(loop.iter, ast.Name) and loop.iter.id == "source"):
        _fail("kernel loop must iterate the source parameter")
    if state_added:
        removes = [
            node
            for node in ast.walk(ast.Module(body=guard.finalbody, type_ignores=[]))
            if isinstance(node, ast.Attribute) and node.attr == "state_remove"
        ]
        if not removes:
            _fail(
                "kernel charges ctx.state_add but its finally never calls "
                "ctx.state_remove"
            )


def _check_compact_guards(fn: ast.FunctionDef) -> None:
    """Every ``cols, n = _compact(...)`` must be immediately followed
    by ``if not n: continue`` in the same block, so no downstream stage
    sees filtered-out lanes or a stale count."""

    def is_compact_assign(stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "_compact"
        )

    def is_guard(stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.If)
            and isinstance(stmt.test, ast.UnaryOp)
            and isinstance(stmt.test.op, ast.Not)
            and isinstance(stmt.test.operand, ast.Name)
            and stmt.test.operand.id == "n"
            and len(stmt.body) == 1
            and isinstance(stmt.body[0], ast.Continue)
            and not stmt.orelse
        )

    for node in ast.walk(fn):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if not isinstance(block, list):
                continue
            for position, stmt in enumerate(block):
                if not is_compact_assign(stmt):
                    continue
                following = block[position + 1] if position + 1 < len(block) else None
                if following is None or not is_guard(following):
                    _fail(
                        f"filter stage {ast.unparse(stmt)!r} is not followed "
                        f"by the 'if not n: continue' guard"
                    )


def audit_consts(consts: tuple, ctx) -> None:
    """Verify a cacheable kernel's consts are closure-free of ``ctx``.

    ``_KERNEL_CACHE`` shares ``(kernel_fn, consts)`` across
    RunContexts; that is only sound if no const closure captured this
    context or its correlation env.  Walks every callable const's
    closure cells and defaults (transitively, bounded) and fails if
    any reachable cell holds the context or the env dict.
    """
    forbidden = {id(ctx): "the RunContext", id(ctx.env): "ctx.env"}
    seen: set[int] = set()
    stack: list = [(index, const) for index, const in enumerate(consts)]
    depth = 0
    while stack and depth < 10_000:
        depth += 1
        index, obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        label = forbidden.get(id(obj))
        if label is not None:
            _fail(
                f"cacheable kernel const #{index} captures {label}; "
                f"sharing it across contexts would leak one query's "
                f"correlation state into another"
            )
        closure = getattr(obj, "__closure__", None)
        if closure:
            stack.extend((index, cell.cell_contents) for cell in closure)
        defaults = getattr(obj, "__defaults__", None)
        if defaults:
            stack.extend((index, default) for default in defaults)
        if isinstance(obj, (tuple, list)):
            stack.extend((index, item) for item in obj)
        elif isinstance(obj, dict):
            stack.extend((index, value) for value in obj.values())
