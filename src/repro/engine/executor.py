"""Streaming plan execution.

Operators are Python generators pulling from their children — the
single-process analogue of Athena's streaming execution, in which
intermediate results flow producer→consumer without materialization.
The property the paper's motivation rests on holds here by
construction: a common subexpression that appears twice in a plan is
*executed* twice, re-scanning its inputs (and re-charging the scan
accounting).

Pipeline-breaking operators (hash join build sides, aggregation,
sort, window, mark-distinct) register their resident state with the
:class:`~repro.engine.metrics.RunContext` so peak memory pressure is
observable (the §V.C spilling discussion).
"""

from __future__ import annotations

from itertools import islice
from operator import itemgetter
from typing import Callable, Iterator

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    columns_in,
    conjuncts,
    make_and,
)
from repro.algebra.operators import (
    CachePopulate,
    CachedScan,
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.schema import Column
from repro.engine.evaluator import (
    Aggregator,
    canon_key,
    compile_expression,
    compile_expression_batch,
)
from repro.engine.metrics import RunContext
from repro.engine.plan_cache import entry_checksum, entry_from_rows
from repro.errors import (
    DataCorruptionError,
    ExecutionError,
    ResourceExhaustedError,
)
from repro.storage.accounting import ScanAccounting, TeeAccounting
from repro.storage.columnar import ColumnChunk

Row = tuple


def execute(plan: PlanNode, ctx: RunContext) -> Iterator[Row]:
    """Execute ``plan``, yielding output rows.

    Each call produces a fresh execution (fresh operator state); the
    ScalarApply fallback relies on this to re-run its subquery per
    outer row.
    """
    rows = _dispatch_row(plan, ctx)
    profiler = ctx.profiler
    if profiler is not None:
        return profiler.wrap(profiler.label(plan), rows)
    return rows


def _dispatch_row(plan: PlanNode, ctx: RunContext) -> Iterator[Row]:
    if isinstance(plan, Scan):
        return _run_scan(plan, ctx)
    if isinstance(plan, Values):
        return iter(plan.rows)
    if isinstance(plan, Filter):
        return _run_filter(plan, ctx)
    if isinstance(plan, Project):
        return _run_project(plan, ctx)
    if isinstance(plan, Join):
        return _run_join(plan, ctx)
    if isinstance(plan, GroupBy):
        return _run_group_by(plan, ctx)
    if isinstance(plan, MarkDistinct):
        return _run_mark_distinct(plan, ctx)
    if isinstance(plan, Window):
        return _run_window(plan, ctx)
    if isinstance(plan, UnionAll):
        return _run_union_all(plan, ctx)
    if isinstance(plan, Sort):
        return _run_sort(plan, ctx)
    if isinstance(plan, Limit):
        return islice(execute(plan.child, ctx), plan.count)
    if isinstance(plan, EnforceSingleRow):
        return _run_enforce_single_row(plan, ctx)
    if isinstance(plan, ScalarApply):
        return _run_scalar_apply(plan, ctx)
    if isinstance(plan, Spool):
        return _run_spool(plan, ctx)
    if isinstance(plan, CachedScan):
        return _run_cached_scan(plan, ctx)
    if isinstance(plan, CachePopulate):
        return _run_cache_populate(plan, ctx)
    if isinstance(plan, Exchange):
        return _run_exchange(plan, ctx)
    if isinstance(plan, Repartition):
        # Bag-identity: placement only matters to the fragment
        # scheduler, which never routes a Repartition to an engine.
        return execute(plan.child, ctx)
    raise ExecutionError(f"no executor for operator {plan.name}")


def _run_exchange(plan: Exchange, ctx: RunContext) -> Iterator[Row]:
    """Replay gathered fragment results, or pass through serially.

    The parallel scheduler executes the subtree under each Exchange on
    the worker pool and deposits the gathered rows (in exact serial
    order) into ``ctx.exchange_results``; what remains of the plan then
    runs in-process and replays them here.  Without an entry — serial
    execution of a parallel-shaped plan — the node is the identity.
    """
    gathered = ctx.exchange_results.get(plan.exchange_id)
    if gathered is None:
        yield from execute(plan.child, ctx)
        return
    for row in gathered:
        yield row


def _check_spool_budget(ctx: RunContext, rows: int, what: str) -> None:
    """Enforce ``max_spool_rows`` on a materialized intermediate."""
    limit = ctx.limits.max_spool_rows
    if limit is not None and rows > limit:
        raise ResourceExhaustedError(
            f"{what} materialized {rows} rows, exceeding max_spool_rows="
            f"{limit}; raise the budget or make the subexpression more "
            "selective"
        )


def _run_spool(plan: "Spool", ctx: RunContext) -> Iterator[Row]:
    cache = ctx.spool_cache.get(plan.spool_id)
    if cache is None:
        ctx.checkpoint()
        cache = list(execute(plan.child, ctx))
        _check_spool_budget(ctx, len(cache), f"spool {plan.spool_id}")
        ctx.spool_cache[plan.spool_id] = cache
        # Materialized state stays resident for the rest of the query.
        ctx.state_add(len(cache))
        ctx.metrics.spooled_rows += len(cache)
    ctx.metrics.spool_read_rows += len(cache)
    return iter(cache)


# -- cross-query plan cache ----------------------------------------------


def _cached_entry(plan: CachedScan, ctx: RunContext):
    """Fetch (and meter) the entry behind a CachedScan.

    The optimizer only installs CachedScan after a pinned planning-time
    hit, so a missing cache or entry here means the plan is being
    executed outside the session that planned it.
    """
    cache = ctx.plan_cache
    if cache is None:
        raise ExecutionError("CachedScan requires the session's plan cache")
    entry = cache.replay(plan.fingerprint)
    if entry is None:
        raise ExecutionError(
            f"plan-cache entry {plan.fingerprint} disappeared before execution"
        )
    if entry.checksum is not None:
        # A corrupt replayed vector would poison every consumer of this
        # entry; verify before handing bytes out, evicting on mismatch.
        ctx.metrics.checksum_verifications += 1
        if entry_checksum(entry.columns) != entry.checksum:
            cache.evict(plan.fingerprint)
            raise DataCorruptionError(
                f"plan-cache entry {plan.fingerprint} failed checksum "
                "verification and was evicted; re-running the query will "
                "recompute it from storage"
            )
    ctx.metrics.cache_hits += 1
    ctx.metrics.cache_bytes_saved += entry.saved_bytes
    ctx.metrics.cache_replayed_rows += entry.row_count
    return entry


def _run_cached_scan(plan: CachedScan, ctx: RunContext) -> Iterator[Row]:
    entry = _cached_entry(plan, ctx)
    vectors = [entry.columns[token] for token in plan.column_tokens]
    if vectors:
        yield from zip(*vectors)
    else:
        yield from ((),) * entry.row_count


#: Upper bound (seconds) a follower waits for an in-flight leader
#: before giving up and executing the subplan itself — shared execution
#: degrades to independent execution, never to a hang.
_SHARED_WAIT_CAP_S = 30.0

#: Follower poll interval: bounds cancellation/deadline latency while
#: waiting on a leader.
_SHARED_POLL_S = 0.01


def _await_inflight(execution, ctx: RunContext):
    """Block (checkpoint-aware) until the leader publishes its entry.

    Returns the entry, or None when the leader failed or the wait
    capped out; cancellation and the query deadline abort the wait the
    same way they abort a scan.
    """
    cap_s = _SHARED_WAIT_CAP_S
    remaining = ctx.deadline_remaining_ms
    if remaining is not None:
        cap_s = min(cap_s, remaining / 1000.0)
    give_up_at = ctx.clock() + cap_s
    while True:
        if execution.ready.wait(_SHARED_POLL_S):
            return execution.entry
        ctx.checkpoint()
        if ctx.clock() > give_up_at:
            return None


def _replay_inflight_entry(plan: CachePopulate, ctx: RunContext, entry) -> list[Row]:
    """Materialize a follower's rows from the leader's published entry
    (token-keyed vectors, so alpha-equivalent consumers reconstruct
    their own column order)."""
    ctx.metrics.shared_hits += 1
    ctx.metrics.cache_bytes_saved += entry.saved_bytes
    ctx.metrics.cache_replayed_rows += entry.row_count
    vectors = [entry.columns[token] for token in plan.column_tokens]
    if vectors:
        return list(zip(*vectors))
    return [()] * entry.row_count


def _materialize_for_cache(plan: CachePopulate, ctx: RunContext, rows_of) -> list[Row]:
    """Drain the populate child with scan accounting teed into a local
    meter, admit the entry, and return the materialized rows.

    ``rows_of`` abstracts over the engines (row tuples either way).

    Concurrent shared execution: when another query is populating the
    same fingerprint *right now*, this query binds as a follower to
    that single execution and replays the fanned-out entry instead of
    re-scanning (zero bytes charged).  The leader publishes its entry
    to followers directly, even when the byte-budgeted cache refuses to
    admit it.
    """
    cache = ctx.plan_cache
    registry = getattr(cache, "inflight", None)
    execution = None
    if registry is not None:
        is_leader, execution = registry.claim(plan.fingerprint)
        if not is_leader:
            entry = _await_inflight(execution, ctx)
            # Fingerprints are semantic (version-free), so a leader
            # that planned before a reload_table can publish an entry
            # built against retired table versions — a follower planned
            # after the bump must not replay it.
            if (
                entry is not None
                and entry.table_versions == plan.table_versions
                and all(token in entry.columns for token in plan.column_tokens)
            ):
                return _replay_inflight_entry(plan, ctx, entry)
            # Leader failed or the wait capped out: execute locally,
            # unregistered (a late re-claim could livelock behind a
            # string of failing leaders).
            execution = None
    try:
        meter = ScanAccounting()
        ctx.push_accounting(TeeAccounting(ctx.accounting, meter))
        try:
            rows = rows_of()
        finally:
            ctx.pop_accounting()
        _check_spool_budget(ctx, len(rows), "plan-cache population")
        entry = entry_from_rows(plan, rows, meter.bytes_scanned)
        # Like a spool, the materialized result stays resident — but
        # only if it was actually admitted to the cache.
        ctx.state_add(len(rows))
        if cache.put(entry):
            ctx.metrics.cache_populations += 1
        else:
            ctx.state_remove(len(rows))
    except BaseException:
        if execution is not None:
            registry.fail(execution)
        raise
    if execution is not None:
        stale = getattr(cache, "is_stale", None)
        if stale is not None and stale(entry):
            # A concurrent invalidate_table fenced off this entry's
            # table versions while it was being materialized (put()
            # refused it as stale_rejected); fanning it out would serve
            # rows from the replaced table.  Fail the execution so
            # followers run against current data themselves.
            registry.fail(execution)
        elif registry.publish(execution, entry):
            ctx.metrics.shared_fanout += 1
    return rows


def _run_cache_populate(plan: CachePopulate, ctx: RunContext) -> Iterator[Row]:
    cache = ctx.plan_cache
    if cache is None or cache.has(plan.fingerprint):
        yield from execute(plan.child, ctx)
        return
    yield from _materialize_for_cache(
        plan, ctx, lambda: list(execute(plan.child, ctx))
    )


# -- scans ---------------------------------------------------------------

_NO_ROW = object()


def _partition_pruner(scan: Scan) -> Callable[[ColumnChunk], bool] | None:
    """Build a chunk-level min/max check from the scan predicate's
    conjuncts on the partition column.  Returns None when the predicate
    cannot prune."""
    if scan.predicate is None:
        return None
    checks: list[Callable[[ColumnChunk], bool]] = []
    by_cid = {col.cid: src for col, src in zip(scan.columns, scan.source_names)}

    def source_name(expr: Expression) -> str | None:
        if isinstance(expr, ColumnRef):
            return by_cid.get(expr.column.cid)
        return None

    for term in conjuncts(scan.predicate):
        if isinstance(term, IsNull):
            # IS NULL never prunes: chunk min/max are computed over
            # non-NULL values only, so a partition whose stats look
            # fully bounded can still contain NULLs.
            continue
        if isinstance(term, Comparison):
            left, right, op = term.left, term.right, term.op
            if isinstance(right, ColumnRef) and isinstance(left, Literal):
                term = term.commuted()
                left, right, op = term.left, term.right, term.op
            name = source_name(left)
            if name is None or not isinstance(right, Literal) or right.value is None:
                continue
            value = right.value
            checks.append(_range_check(name, op, value))
        elif isinstance(term, InList) and all(
            isinstance(i, Literal) for i in term.items
        ):
            name = source_name(term.operand)
            if name is None:
                continue
            values = [i.value for i in term.items if i.value is not None]
            checks.append(_in_check(name, values))
    if not checks:
        return None

    def prune(chunk: ColumnChunk) -> bool:
        if chunk.min_value is None or chunk.max_value is None:
            return True  # all-NULL or empty chunk: cannot prune safely
        return all(check(chunk) for check in checks)

    return prune


def _range_check(name: str, op: str, value: object) -> Callable[[ColumnChunk], bool]:
    def check(chunk: ColumnChunk) -> bool:
        if chunk.name.lower() != name.lower():
            return True
        low, high = chunk.min_value, chunk.max_value
        try:
            if op == "=":
                return low <= value <= high
            if op == "<":
                return low < value
            if op == "<=":
                return low <= value
            if op == ">":
                return high > value
            if op == ">=":
                return high >= value
        except TypeError:
            return True
        return True  # <> cannot prune on ranges

    return check


def _in_check(name: str, values: list[object]) -> Callable[[ColumnChunk], bool]:
    def check(chunk: ColumnChunk) -> bool:
        if chunk.name.lower() != name.lower():
            return True
        low, high = chunk.min_value, chunk.max_value
        try:
            return any(low <= v <= high for v in values)
        except TypeError:
            return True

    return check


def scan_predicate(plan: Scan, ctx: RunContext, mode: str = "row") -> Callable:
    """Fetch (or compile and memoize) the scan's compiled predicate.

    Cached per :class:`RunContext`: within one execution the
    correlation environment is a single dict, so a Scan re-executed
    many times (ScalarApply re-runs its subquery per outer row)
    compiles its predicate once instead of once per run.
    """
    key = (id(plan), mode)
    predicate = ctx.scan_predicate_cache.get(key)
    if predicate is None:
        if mode == "row":
            predicate = compile_expression(plan.predicate, plan.columns, ctx.env)
        elif mode == "vector":
            from repro.engine.vectors import compile_expression_vector

            predicate = compile_expression_vector(
                plan.predicate, plan.columns, ctx.env
            )
        else:
            predicate = compile_expression_batch(plan.predicate, plan.columns, ctx.env)
        ctx.scan_predicate_cache[key] = predicate
    return predicate


def _run_scan(plan: Scan, ctx: RunContext) -> Iterator[Row]:
    rows = ctx.store.scan(
        plan.table,
        plan.source_names,
        ctx.accounting,
        partition_predicate=_partition_pruner(plan),
        runtime=ctx,
    )
    if plan.predicate is None:
        yield from rows
        return
    # Compilation is deferred until the first row arrives: a scan whose
    # partitions were all pruned (or whose table is empty) never pays
    # for compiling its predicate.
    first = next(rows, _NO_ROW)
    if first is _NO_ROW:
        return
    predicate = scan_predicate(plan, ctx)
    if predicate(first) is True:
        yield first
    for row in rows:
        if predicate(row) is True:
            yield row


# -- row-at-a-time operators -----------------------------------------------


def _run_filter(plan: Filter, ctx: RunContext) -> Iterator[Row]:
    condition = compile_expression(plan.condition, plan.child.output_columns, ctx.env)
    for row in execute(plan.child, ctx):
        if condition(row) is True:
            yield row


def _run_project(plan: Project, ctx: RunContext) -> Iterator[Row]:
    child_columns = plan.child.output_columns
    indexes = {c.cid: i for i, c in enumerate(child_columns)}
    # Pass-through column references resolve to plain tuple indexes
    # (int slots); only computed expressions pay a closure call.
    slots: list = []
    for _, expr in plan.assignments:
        if isinstance(expr, ColumnRef) and expr.column.cid in indexes:
            slots.append(indexes[expr.column.cid])
        else:
            slots.append(compile_expression(expr, child_columns, ctx.env))
    if all(isinstance(s, int) for s in slots):
        if not slots:
            for _ in execute(plan.child, ctx):
                yield ()
            return
        getter = itemgetter(*slots)
        if len(slots) == 1:
            for row in execute(plan.child, ctx):
                yield (getter(row),)
        else:
            for row in execute(plan.child, ctx):
                yield getter(row)
        return
    for row in execute(plan.child, ctx):
        yield tuple(
            row[slot] if type(slot) is int else slot(row) for slot in slots
        )


# -- joins ---------------------------------------------------------------


def _split_join_condition(
    condition: Expression | None,
    left_columns: tuple[Column, ...],
    right_columns: tuple[Column, ...],
):
    """Split a join condition into hashable equi-pairs and a residual."""
    left_set = {c.cid for c in left_columns}
    right_set = {c.cid for c in right_columns}
    equi: list[tuple[Expression, Expression]] = []
    residual: list[Expression] = []
    for term in conjuncts(condition):
        if isinstance(term, Comparison) and term.op == "=":
            lcols = {c.cid for c in columns_in(term.left)}
            rcols = {c.cid for c in columns_in(term.right)}
            if lcols and rcols and lcols <= left_set and rcols <= right_set:
                equi.append((term.left, term.right))
                continue
            if lcols and rcols and lcols <= right_set and rcols <= left_set:
                equi.append((term.right, term.left))
                continue
        residual.append(term)
    return equi, make_and(residual) if residual else TRUE


def _run_join(plan: Join, ctx: RunContext) -> Iterator[Row]:
    left_columns = plan.left.output_columns
    right_columns = plan.right.output_columns

    if plan.kind is JoinKind.CROSS:
        right_rows = list(execute(plan.right, ctx))
        ctx.state_add(len(right_rows))
        try:
            for left_row in execute(plan.left, ctx):
                for right_row in right_rows:
                    yield left_row + right_row
        finally:
            ctx.state_remove(len(right_rows))
        return

    equi, residual = _split_join_condition(plan.condition, left_columns, right_columns)
    combined = left_columns + right_columns
    residual_fn = (
        None if residual == TRUE else compile_expression(residual, combined, ctx.env)
    )
    pad = (None,) * len(right_columns)
    semi_like = plan.kind in (JoinKind.SEMI, JoinKind.ANTI)

    if equi:
        left_keys = [compile_expression(l, left_columns, ctx.env) for l, _ in equi]
        right_keys = [compile_expression(r, right_columns, ctx.env) for _, r in equi]
        table: dict[tuple, list[Row]] = {}
        build_rows = 0
        for row in execute(plan.right, ctx):
            key = tuple(fn(row) for fn in right_keys)
            if any(k is None for k in key):
                continue  # NULL keys never join
            table.setdefault(key, []).append(row)
            build_rows += 1
        ctx.state_add(build_rows)
        try:
            for left_row in execute(plan.left, ctx):
                key = tuple(fn(left_row) for fn in left_keys)
                matched = False
                if not any(k is None for k in key):
                    for right_row in table.get(key, ()):
                        if residual_fn is None or residual_fn(left_row + right_row) is True:
                            matched = True
                            if plan.kind is JoinKind.SEMI:
                                break
                            if plan.kind in (JoinKind.INNER, JoinKind.LEFT):
                                yield left_row + right_row
                if semi_like:
                    if matched == (plan.kind is JoinKind.SEMI):
                        yield left_row
                elif plan.kind is JoinKind.LEFT and not matched:
                    yield left_row + pad
        finally:
            ctx.state_remove(build_rows)
        return

    # No hashable equi-conjuncts: nested loop against a materialized right.
    right_rows = list(execute(plan.right, ctx))
    ctx.state_add(len(right_rows))
    try:
        for left_row in execute(plan.left, ctx):
            matched = False
            for right_row in right_rows:
                if residual_fn is None or residual_fn(left_row + right_row) is True:
                    matched = True
                    if plan.kind is JoinKind.SEMI:
                        break
                    if plan.kind in (JoinKind.INNER, JoinKind.LEFT):
                        yield left_row + right_row
            if semi_like:
                if matched == (plan.kind is JoinKind.SEMI):
                    yield left_row
            elif plan.kind is JoinKind.LEFT and not matched:
                yield left_row + pad
    finally:
        ctx.state_remove(len(right_rows))


# -- aggregation -------------------------------------------------------------


def _run_group_by(plan: GroupBy, ctx: RunContext) -> Iterator[Row]:
    child_columns = plan.child.output_columns
    key_fns = [
        compile_expression(ColumnRef(k), child_columns, ctx.env) for k in plan.keys
    ]
    # Fused GroupBys carry many aggregates sharing a few distinct masks
    # and arguments (§III.E); evaluate each distinct expression once per
    # row and share the value across aggregates.
    shared_fns: list = []
    shared_index: dict[Expression, int] = {}

    def shared(expr: Expression) -> int:
        slot = shared_index.get(expr)
        if slot is None:
            slot = len(shared_fns)
            shared_index[expr] = slot
            shared_fns.append(compile_expression(expr, child_columns, ctx.env))
        return slot

    agg_specs = []
    for assignment in plan.aggregates:
        arg_slot = None if assignment.argument is None else shared(assignment.argument)
        mask_slot = None if assignment.mask == TRUE else shared(assignment.mask)
        agg_specs.append((assignment.func, assignment.distinct, arg_slot, mask_slot))

    groups: dict[tuple, list[Aggregator]] = {}
    group_count = 0
    try:
        for row in execute(plan.child, ctx):
            key = tuple(canon_key(fn(row)) for fn in key_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
                groups[key] = accumulators
                group_count += 1
                ctx.state_add(1)
            values = [fn(row) for fn in shared_fns]
            for acc, (_, _, arg_slot, mask_slot) in zip(accumulators, agg_specs):
                if mask_slot is not None and values[mask_slot] is not True:
                    continue
                if arg_slot is None:
                    acc.add_count_star()
                else:
                    acc.add(values[arg_slot])
        if plan.is_scalar and not groups:
            # Global aggregation over empty input still yields one row.
            accumulators = [Aggregator(f, d) for f, d, _, _ in agg_specs]
            yield tuple(acc.result() for acc in accumulators)
            return
        for key, accumulators in groups.items():
            yield key + tuple(acc.result() for acc in accumulators)
    finally:
        ctx.state_remove(group_count)


def _run_mark_distinct(plan: MarkDistinct, ctx: RunContext) -> Iterator[Row]:
    """Executes a whole chain of MarkDistinct operators in one pass —
    the paper's §III.F mentions "processing a chain of MarkDistinct
    operators … holistically rather than one pair at a time"; here that
    means one tuple build per row instead of one per operator."""
    chain: list[MarkDistinct] = [plan]
    cursor = plan.child
    while isinstance(cursor, MarkDistinct):
        chain.append(cursor)
        cursor = cursor.child
    chain.reverse()  # innermost first, matching output column order

    base_columns = cursor.output_columns
    col_index = {c.cid: i for i, c in enumerate(base_columns)}
    specs: list[tuple[list[int], object]] = []
    schema = tuple(base_columns)
    for node in chain:
        try:
            indexes = [col_index[c.cid] for c in node.columns]
        except KeyError as exc:
            raise ExecutionError(
                f"MarkDistinct references unavailable column: {exc}"
            ) from None
        mask_fn = (
            None
            if node.mask == TRUE
            else compile_expression(node.mask, schema, ctx.env)
        )
        specs.append((indexes, mask_fn))
        col_index[node.marker.cid] = len(schema)
        schema = schema + (node.marker,)
    seen_sets: list[set] = [set() for _ in chain]
    added = 0
    try:
        for row in execute(cursor, ctx):
            extended = list(row)
            for (indexes, mask_fn), seen in zip(specs, seen_sets):
                if mask_fn is not None and mask_fn(extended) is not True:
                    extended.append(False)
                    continue
                key = tuple(canon_key(extended[i]) for i in indexes)
                if key in seen:
                    extended.append(False)
                else:
                    seen.add(key)
                    added += 1
                    ctx.state_add(1)
                    extended.append(True)
            yield tuple(extended)
    finally:
        ctx.state_remove(added)


def _run_window(plan: Window, ctx: RunContext) -> Iterator[Row]:
    child_columns = plan.child.output_columns
    part_indexes = [list(child_columns).index(c) for c in plan.partition_by]
    arg_fns = [
        None if f.argument is None else compile_expression(f.argument, child_columns, ctx.env)
        for f in plan.functions
    ]
    rows = list(execute(plan.child, ctx))
    ctx.state_add(len(rows))
    try:
        partitions: dict[tuple, list[Aggregator]] = {}
        for row in rows:
            key = tuple(row[i] for i in part_indexes)
            accumulators = partitions.get(key)
            if accumulators is None:
                accumulators = [Aggregator(f.func) for f in plan.functions]
                partitions[key] = accumulators
            for acc, arg_fn in zip(accumulators, arg_fns):
                if arg_fn is None:
                    acc.add_count_star()
                else:
                    acc.add(arg_fn(row))
        results = {
            key: tuple(acc.result() for acc in accumulators)
            for key, accumulators in partitions.items()
        }
        for row in rows:
            key = tuple(row[i] for i in part_indexes)
            yield row + results[key]
    finally:
        ctx.state_remove(len(rows))


# -- set operations, sorting, scalar plumbing -------------------------------


def _run_union_all(plan: UnionAll, ctx: RunContext) -> Iterator[Row]:
    for child, branch in zip(plan.inputs, plan.input_columns):
        child_columns = list(child.output_columns)
        indexes = [child_columns.index(c) for c in branch]
        for row in execute(child, ctx):
            yield tuple(row[i] for i in indexes)


def _run_sort(plan: Sort, ctx: RunContext) -> Iterator[Row]:
    rows = list(execute(plan.child, ctx))
    ctx.state_add(len(rows))
    try:
        child_columns = plan.child.output_columns
        for key in reversed(plan.keys):
            fn = compile_expression(key.expression, child_columns, ctx.env)

            def sort_key(row: Row, fn=fn) -> tuple:
                value = fn(row)
                # NULLs last ascending / first descending; the 1-tuple
                # trick avoids comparing None with None.
                return (1,) if value is None else (0, value)

            rows.sort(key=sort_key, reverse=not key.ascending)
        yield from rows
    finally:
        ctx.state_remove(len(rows))


def _run_enforce_single_row(plan: EnforceSingleRow, ctx: RunContext) -> Iterator[Row]:
    rows = list(islice(execute(plan.child, ctx), 2))
    if len(rows) > 1:
        raise ExecutionError("scalar subquery returned more than one row")
    if rows:
        yield rows[0]
    else:
        yield (None,) * len(plan.output_columns)


def _run_scalar_apply(plan: ScalarApply, ctx: RunContext) -> Iterator[Row]:
    input_columns = plan.input.output_columns
    value_index = list(plan.subquery.output_columns).index(plan.value)
    for row in execute(plan.input, ctx):
        for column, value in zip(input_columns, row):
            ctx.env[column.cid] = value
        sub_rows = list(islice(execute(plan.subquery, ctx), 2))
        if len(sub_rows) > 1:
            raise ExecutionError("correlated scalar subquery returned more than one row")
        value = sub_rows[0][value_index] if sub_rows else None
        yield row + (value,)
