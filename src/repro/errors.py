"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses distinguish
the layer that failed (parsing, binding, planning, execution), mirroring
how a query service reports errors to users.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the (1-based) line and column of the offending token when
    available so error messages can point at the query text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}:{column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(ReproError):
    """Name resolution or semantic analysis failed (unknown table/column,
    ambiguous reference, misplaced aggregate, unsupported construct)."""


class CatalogError(ReproError):
    """A catalog object (table, column) is missing or inconsistent."""


class PlanError(ReproError):
    """An algebraic plan is malformed (e.g. an operator references a
    column its child does not produce)."""


class ExecutionError(ReproError):
    """Runtime failure while evaluating a plan (e.g. EnforceSingleRow
    saw more than one row, or a scalar function received bad input)."""


class StorageError(ReproError):
    """Base class for failures in the storage layer (the S3 stand-in).

    Distinguishes *transient* faults, which a retry policy may absorb,
    from *corruption*, which no retry can fix.
    """


class TransientReadError(StorageError):
    """A chunk read failed transiently (the S3 analogue of a 500/503 or
    a dropped connection).  Retried by the engine's retry policy; it
    only reaches callers when retries are exhausted or disabled."""


class DataCorruptionError(StorageError):
    """A chunk (or cached result) no longer matches its build-time
    checksum.  Not retried: the data itself is bad.  Detection evicts
    any plan-cache entries derived from the affected table; reloading
    the table (``store.put`` + ``session.reload_table``) recovers."""


class QueryTimeoutError(ReproError):
    """The query exceeded its per-query deadline (``timeout_ms``).
    Raised cooperatively at block boundaries, so partial work is
    abandoned promptly without leaving operators in a broken state."""


class QueryCancelledError(ReproError):
    """The query was cancelled cooperatively (``Session.cancel``),
    observed at the next block boundary."""


class ResourceExhaustedError(ReproError):
    """A resource budget was exceeded: operator state grew past
    ``max_state_rows`` or a spool past ``max_spool_rows``.  The limits
    are per query; raise them or reduce the data processed."""


class AdmissionRejectedError(ReproError):
    """The query was shed at the service boundary before any work ran:
    the admission queue is full, the tenant is over its rate limit, or
    the tenant's in-flight budget is exhausted.  Carries
    ``retry_after_ms`` — the client should back off at least that long
    before resubmitting (the 503-with-Retry-After of a query service).
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0):
        super().__init__(f"{message} (retry after {retry_after_ms:.0f}ms)")
        self.retry_after_ms = retry_after_ms


class QueryQueueTimeoutError(ReproError):
    """The query was admitted but waited in the service queue longer
    than its queue-wait deadline; it was dropped without executing.
    Distinct from :class:`QueryTimeoutError`, which means execution
    itself exceeded the per-query deadline."""


class CircuitOpenError(ReproError):
    """Every execution rung the degradation ladder could try for this
    query has an open circuit breaker (its recent failure rate tripped
    the rolling-window threshold).  The service refuses to burn work on
    a configuration that keeps failing; breakers half-open and probe
    recovery automatically after their cooldown."""


class WorkerPoolError(ReproError):
    """The fragment worker pool is unhealthy beyond repair for the
    current query (e.g. it could not be rebuilt after a wipeout).  The
    degradation ladder responds by retrying the query serially."""


class OptimizerError(ReproError):
    """An optimizer rule produced an invalid rewrite.

    Rules are supposed to be semantics preserving; this error indicates
    a bug in a rule rather than in the user's query.
    """


class KernelAuditError(ReproError):
    """A synthesized compiled-engine kernel violated its static
    contract (repro.engine.kernel_audit).

    The kernel generator is supposed to emit code confined to the
    documented runtime namespace with every filter stage guarded; this
    error indicates a bug in the generator (or an unsound cache entry),
    not in the user's query.
    """
