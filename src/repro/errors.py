"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses distinguish
the layer that failed (parsing, binding, planning, execution), mirroring
how a query service reports errors to users.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the (1-based) line and column of the offending token when
    available so error messages can point at the query text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}:{column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(ReproError):
    """Name resolution or semantic analysis failed (unknown table/column,
    ambiguous reference, misplaced aggregate, unsupported construct)."""


class CatalogError(ReproError):
    """A catalog object (table, column) is missing or inconsistent."""


class PlanError(ReproError):
    """An algebraic plan is malformed (e.g. an operator references a
    column its child does not produce)."""


class ExecutionError(ReproError):
    """Runtime failure while evaluating a plan (e.g. EnforceSingleRow
    saw more than one row, or a scalar function received bad input)."""


class OptimizerError(ReproError):
    """An optimizer rule produced an invalid rewrite.

    Rules are supposed to be semantics preserving; this error indicates
    a bug in a rule rather than in the user's query.
    """
