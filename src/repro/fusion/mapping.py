"""Column mappings — the ``M`` component of fusion results.

``Fuse(P1, P2) = (P, M, L, R)`` maps output columns of the discarded
plan ``P2`` to output columns of the fused plan ``P``.  Following the
paper's footnote, we "abuse the notation" and apply ``M`` to whole
expressions in the natural way (:meth:`ColumnMapping.map_expression`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.algebra.expressions import ColumnRef, Expression, substitute
from repro.algebra.schema import Column


class ColumnMapping:
    """An immutable-ish map from columns (of P2) to columns (of P).

    Columns absent from the map are mapped to themselves — convenient
    because fused plans preserve the P1-side column identities.
    """

    def __init__(self, entries: Mapping[Column, Column] | None = None):
        self._entries: dict[int, Column] = {}
        self._sources: dict[int, Column] = {}
        if entries:
            for src, dst in entries.items():
                self.add(src, dst)

    def add(self, source: Column, target: Column) -> None:
        self._entries[source.cid] = target
        self._sources[source.cid] = source

    def map_column(self, column: Column) -> Column:
        return self._entries.get(column.cid, column)

    def map_columns(self, columns: Iterable[Column]) -> tuple[Column, ...]:
        return tuple(self.map_column(c) for c in columns)

    def map_expression(self, expr: Expression) -> Expression:
        if not self._entries:
            return expr
        substitution = {cid: ColumnRef(col) for cid, col in self._entries.items()}
        return substitute(expr, substitution)

    def merged(self, other: "ColumnMapping") -> "ColumnMapping":
        """A new mapping with entries from both (domains must be
        disjoint, which holds for the left/right sides of a join)."""
        result = ColumnMapping()
        result._entries.update(self._entries)
        result._sources.update(self._sources)
        for cid, column in other._entries.items():
            result._entries[cid] = column
            result._sources[cid] = other._sources[cid]
        return result

    def items(self) -> Iterator[tuple[Column, Column]]:
        for cid, target in self._entries.items():
            yield self._sources[cid], target

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, column: Column) -> bool:
        return column.cid in self._entries

    def __repr__(self) -> str:
        pairs = ", ".join(f"{s!r}->{t!r}" for s, t in self.items())
        return f"ColumnMapping({pairs})"
