"""Query fusion (paper §III): Fuse(P1, P2) -> (P, M, L, R)."""

from repro.fusion.fuse import Fuser, structural_equivalence
from repro.fusion.mapping import ColumnMapping
from repro.fusion.result import FusionResult, reconstruct_left, reconstruct_right

__all__ = [
    "Fuser",
    "FusionResult",
    "ColumnMapping",
    "structural_equivalence",
    "reconstruct_left",
    "reconstruct_right",
]
