"""The ``Fuse`` operation (paper §III).

``Fuse(P1, P2)`` recursively fuses two logical plans into one plan
that computes a superset of both, together with a column mapping and
compensating filters (see :mod:`repro.fusion.result`).  It returns
``None`` (the paper's ⊥) when the inputs cannot be fused.

Cases implemented, following the paper section by section:

* §III.A table scans (extended with pushed-down scan predicates, which
  fuse like filters);
* §III.B filters — OR of the conditions, compensators restore each;
* §III.C projections — shared assignments are deduplicated via the
  mapping; compensating filters are kept well-formed by adding
  pass-through assignments for any column they reference;
* §III.D joins — pairwise fusion of both sides, requiring equivalent
  conditions modulo the mapping; inner/cross joins combine both sides'
  compensators, semi/anti/left variants require exact right sides;
* §III.E aggregations — masks!  Aggregate lists are merged with
  tightened masks, plus ``COUNT(*) FILTER(L) > 0`` compensations for
  non-scalar group-bys;
* §III.F MarkDistinct — compensating boolean columns are added to the
  distinct sets so markers stay correct per consumer;
* §III.G generic operators (EnforceSingleRow, Sort, Limit via
  structural equivalence) and root-mismatch compensations: skipping a
  MarkDistinct, absorbing a Filter, manufacturing a trivial Project —
  tried in exactly that order, which resolves the paper's
  ``Filter(T)`` vs ``MarkDistinct(Filter(T))`` example the good way.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    Expression,
    columns_in,
    equivalent,
    integer,
    make_and,
    normalize,
)
from repro.algebra.operators import (
    AggregateAssignment,
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
)
from repro.algebra.schema import Column, ColumnAllocator
from repro.algebra.simplify import simplify, simplify_filter
from repro.algebra.types import DataType
from repro.fusion.mapping import ColumnMapping
from repro.fusion.result import FusionResult


class Fuser:
    """Stateful fusion driver (needs an allocator for fresh columns)."""

    def __init__(self, allocator: ColumnAllocator, validate: bool = False):
        self.allocator = allocator
        #: Check §III's contract (mapping soundness, live compensators)
        #: on every successful fusion — set from
        #: ``OptimizerConfig(validate_plans=True)``.
        self.validate = validate

    # -- dispatch ----------------------------------------------------------

    def fuse(self, p1: PlanNode, p2: PlanNode) -> FusionResult | None:
        """Fuse two plans; None when fusion is not possible."""
        result = self._dispatch(p1, p2)
        if result is not None and self.validate:
            from repro.algebra.validator import validate_fusion_result

            validate_fusion_result(result, p1, p2)
        return result

    def _dispatch(self, p1: PlanNode, p2: PlanNode) -> FusionResult | None:
        if type(p1) is type(p2):
            handler = self._HANDLERS.get(type(p1))
            if handler is not None:
                return handler(self, p1, p2)
            return self._fuse_structural(p1, p2)
        # Root operators differ: best-effort compensations (§III.G),
        # in preference order.
        if isinstance(p1, MarkDistinct):
            return self._skip_mark_distinct_left(p1, p2)
        if isinstance(p2, MarkDistinct):
            return self._skip_mark_distinct_right(p1, p2)
        if isinstance(p1, Filter):
            return self._absorb_filter_left(p1, p2)
        if isinstance(p2, Filter):
            return self._absorb_filter_right(p1, p2)
        if isinstance(p1, Project):
            return self._fuse_project(p1, Project.identity(p2))
        if isinstance(p2, Project):
            return self._fuse_project(Project.identity(p1), p2)
        return None

    # -- scans (§III.A) ----------------------------------------------------

    def _fuse_scan(self, p1: Scan, p2: Scan) -> FusionResult | None:
        if p1.table.lower() != p2.table.lower():
            return None
        mapping = ColumnMapping()
        by_source = {src.lower(): col for col, src in zip(p1.columns, p1.source_names)}
        extra_columns: list[Column] = []
        extra_sources: list[str] = []
        for column, source in zip(p2.columns, p2.source_names):
            match = by_source.get(source.lower())
            if match is not None:
                mapping.add(column, match)
            else:
                extra_columns.append(column)
                extra_sources.append(source)
        plan = Scan(
            p1.table,
            p1.columns + tuple(extra_columns),
            p1.source_names + tuple(extra_sources),
            p1.predicate,
        )
        if p1.predicate is None and p2.predicate is None:
            return FusionResult(plan, mapping)
        # Pushed-down predicates fuse like filters.
        c1 = p1.predicate if p1.predicate is not None else TRUE
        c2 = mapping.map_expression(p2.predicate) if p2.predicate is not None else TRUE
        if equivalent(c1, c2):
            return FusionResult(plan, mapping)
        fused = simplify_filter(make_or_pair(c1, c2))
        plan = plan.with_predicate(None if fused == TRUE else fused)
        return FusionResult(plan, mapping, c1, c2)

    # -- filters (§III.B) ----------------------------------------------------

    def _fuse_filter(self, p1: Filter, p2: Filter) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None:
            return None
        c1 = p1.condition
        c2 = child.mapping.map_expression(p2.condition)
        if equivalent(c1, c2):
            return FusionResult(
                Filter(child.plan, c1),
                child.mapping,
                child.left_filter,
                child.right_filter,
            )
        fused_condition = simplify_filter(make_or_pair(c1, c2))
        plan = (
            child.plan
            if fused_condition == TRUE
            else Filter(child.plan, fused_condition)
        )
        left = simplify(make_and([child.left_filter, c1]))
        right = simplify(make_and([child.right_filter, c2]))
        return FusionResult(plan, child.mapping, left, right)

    def _absorb_filter_left(self, p1: Filter, p2: PlanNode) -> FusionResult | None:
        child = self.fuse(p1.child, p2)
        if child is None:
            return None
        left = simplify(make_and([child.left_filter, p1.condition]))
        return FusionResult(child.plan, child.mapping, left, child.right_filter)

    def _absorb_filter_right(self, p1: PlanNode, p2: Filter) -> FusionResult | None:
        child = self.fuse(p1, p2.child)
        if child is None:
            return None
        condition = child.mapping.map_expression(p2.condition)
        right = simplify(make_and([child.right_filter, condition]))
        return FusionResult(child.plan, child.mapping, child.left_filter, right)

    # -- projections (§III.C) -------------------------------------------------

    def _fuse_project(self, p1: Project, p2: Project) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None:
            return None
        assignments = list(p1.assignments)
        by_expression: dict[Expression, Column] = {
            normalize(expr): target for target, expr in p1.assignments
        }
        mapping = ColumnMapping()
        for target, expr in p2.assignments:
            mapped = child.mapping.map_expression(expr)
            key = normalize(mapped)
            existing = by_expression.get(key)
            if existing is not None:
                mapping.add(target, existing)
            else:
                # Keep the P2 target's identity; it maps to itself.
                assignments.append((target, mapped))
                by_expression[key] = target
        left, assignments = self._pull_through_project(child.left_filter, assignments)
        right, assignments = self._pull_through_project(child.right_filter, assignments)
        return FusionResult(Project(child.plan, tuple(assignments)), mapping, left, right)

    def _pull_through_project(
        self,
        condition: Expression,
        assignments: list[tuple[Column, Expression]],
    ) -> tuple[Expression, list[tuple[Column, Expression]]]:
        """Keep a compensating filter valid above a projection.

        §III.C leaves implicit that L/R may reference columns the
        projection drops; we add pass-through assignments (preserving
        column identity) so the invariant "L and R are defined over the
        output columns of P" always holds.
        """
        if condition == TRUE:
            return condition, assignments
        assignments = list(assignments)
        targets = {target.cid: expr for target, expr in assignments}
        rewrites: dict[int, Expression] = {}
        for column in sorted(columns_in(condition), key=lambda c: c.cid):
            existing = targets.get(column.cid)
            if existing is None:
                assignments.append((column, ColumnRef(column)))
                targets[column.cid] = ColumnRef(column)
            elif existing != ColumnRef(column):
                # The target id is taken by a different expression:
                # route the filter through a fresh pass-through column.
                fresh = self.allocator.like(column)
                assignments.append((fresh, ColumnRef(column)))
                targets[fresh.cid] = ColumnRef(column)
                rewrites[column.cid] = ColumnRef(fresh)
        if rewrites:
            from repro.algebra.expressions import substitute

            condition = substitute(condition, rewrites)
        return condition, assignments

    # -- joins (§III.D) ----------------------------------------------------

    def _fuse_join(self, p1: Join, p2: Join) -> FusionResult | None:
        if p1.kind is not p2.kind:
            return None
        left = self.fuse(p1.left, p2.left)
        if left is None:
            return None
        right = self.fuse(p1.right, p2.right)
        if right is None:
            return None
        mapping = left.mapping.merged(right.mapping)
        if p1.kind is not JoinKind.CROSS:
            if not equivalent(p1.condition, p2.condition, _substitution(mapping)):
                return None
        if p1.kind in (JoinKind.SEMI, JoinKind.ANTI, JoinKind.LEFT):
            # Compensators on the right side would change which left
            # rows match (semi/anti) or get padded (left outer): only
            # fuse when the right sides fused exactly.
            if not right.is_exact:
                return None
            plan = Join(p1.kind, left.plan, right.plan, p1.condition)
            return FusionResult(plan, mapping, left.left_filter, left.right_filter)
        plan = Join(p1.kind, left.plan, right.plan, p1.condition)
        l_comp = simplify(make_and([left.left_filter, right.left_filter]))
        r_comp = simplify(make_and([left.right_filter, right.right_filter]))
        return FusionResult(plan, mapping, l_comp, r_comp)

    # -- aggregations (§III.E) -------------------------------------------------

    def _fuse_group_by(self, p1: GroupBy, p2: GroupBy) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None:
            return None
        keys2 = set(child.mapping.map_columns(p2.keys))
        if set(p1.keys) != keys2:
            return None
        left, right = child.left_filter, child.right_filter
        merged: list[AggregateAssignment] = []
        index: dict[tuple, Column] = {}

        def agg_key(assignment: AggregateAssignment) -> tuple:
            argument = (
                None
                if assignment.argument is None
                else normalize(assignment.argument)
            )
            return (assignment.func, argument, normalize(assignment.mask), assignment.distinct)

        for assignment in p1.aggregates:
            mask = simplify(make_and([assignment.mask, left]))
            tightened = AggregateAssignment(
                assignment.target, assignment.func, assignment.argument, mask,
                assignment.distinct,
            )
            merged.append(tightened)
            index[agg_key(tightened)] = tightened.target

        mapping = ColumnMapping(dict(child.mapping.items()))
        for assignment in p2.aggregates:
            argument = (
                None
                if assignment.argument is None
                else child.mapping.map_expression(assignment.argument)
            )
            mask = simplify(
                make_and([child.mapping.map_expression(assignment.mask), right])
            )
            candidate = AggregateAssignment(
                assignment.target, assignment.func, argument, mask, assignment.distinct
            )
            existing = index.get(agg_key(candidate))
            if existing is not None:
                mapping.add(assignment.target, existing)
            else:
                merged.append(candidate)
                index[agg_key(candidate)] = candidate.target

        comp_left: Expression = TRUE
        comp_right: Expression = TRUE
        if p1.keys and left != TRUE:
            comp_left = Comparison(">", ColumnRef(self._count_column(merged, index, left)), integer(0))
        if p1.keys and right != TRUE:
            comp_right = Comparison(">", ColumnRef(self._count_column(merged, index, right)), integer(0))
        plan = GroupBy(child.plan, p1.keys, tuple(merged))
        return FusionResult(plan, mapping, comp_left, comp_right)

    def _count_column(
        self,
        merged: list[AggregateAssignment],
        index: dict[tuple, Column],
        mask: Expression,
    ) -> Column:
        """The compensating ``COUNT(*) FILTER (mask)`` column, reusing
        an existing aggregate when one matches.

        The merged aggregates were keyed on *simplified* masks
        (``simplify(make_and([mask, filter]))``), so the compensation
        mask must be simplified the same way before keying — otherwise
        e.g. an unsimplified scan-predicate compensator ``NOT (x <= 5)``
        misses the existing ``count(*) FILTER (x > 5)`` and a duplicate
        count column is emitted.
        """
        mask = simplify(mask)
        key = ("count", None, normalize(mask), False)
        existing = index.get(key)
        if existing is not None:
            return existing
        target = self.allocator.fresh("comp_count", DataType.INTEGER)
        assignment = AggregateAssignment(target, "count", None, mask, False)
        merged.append(assignment)
        index[key] = target
        return target

    # -- MarkDistinct (§III.F) -------------------------------------------------

    def _fuse_mark_distinct(self, p1: MarkDistinct, p2: MarkDistinct) -> FusionResult | None:
        """§III.F with the native-mask extension the paper sketches:
        instead of projecting compensating boolean columns into the
        distinct sets, each re-emitted MarkDistinct tightens its own
        mask with the consumer's compensating filter, so it counts a
        first occurrence only among that consumer's rows."""
        child = self.fuse(p1.child, p2.child)
        if child is None:
            return None
        left, right = child.left_filter, child.right_filter
        mask1 = simplify(make_and([p1.mask, left]))
        mask2 = simplify(
            make_and([child.mapping.map_expression(p2.mask), right])
        )
        plan: PlanNode = MarkDistinct(
            child.plan, child.mapping.map_columns(p2.columns), p2.marker, mask2
        )
        plan = MarkDistinct(plan, p1.columns, p1.marker, mask1)
        mapping = ColumnMapping(dict(child.mapping.items()))
        mapping.add(p2.marker, p2.marker)
        return FusionResult(plan, mapping, left, right)

    def _skip_mark_distinct_left(self, p1: MarkDistinct, p2: PlanNode) -> FusionResult | None:
        child = self.fuse(p1.child, p2)
        if child is None:
            return None
        mask = simplify(make_and([p1.mask, child.left_filter]))
        plan = MarkDistinct(child.plan, p1.columns, p1.marker, mask)
        return FusionResult(plan, child.mapping, child.left_filter, child.right_filter)

    def _skip_mark_distinct_right(self, p1: PlanNode, p2: MarkDistinct) -> FusionResult | None:
        child = self.fuse(p1, p2.child)
        if child is None:
            return None
        mask = simplify(
            make_and([child.mapping.map_expression(p2.mask), child.right_filter])
        )
        plan = MarkDistinct(
            child.plan, child.mapping.map_columns(p2.columns), p2.marker, mask
        )
        mapping = ColumnMapping(dict(child.mapping.items()))
        mapping.add(p2.marker, p2.marker)
        return FusionResult(plan, mapping, child.left_filter, child.right_filter)

    # -- windows -----------------------------------------------------------

    def _fuse_window(self, p1: Window, p2: Window) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None or not child.is_exact:
            # Window aggregates over a superset stream would differ.
            return None
        parts2 = child.mapping.map_columns(p2.partition_by)
        if set(p1.partition_by) != set(parts2):
            return None
        merged = list(p1.functions)
        index: dict[tuple, Column] = {}
        for fn in p1.functions:
            arg = None if fn.argument is None else normalize(fn.argument)
            index[(fn.func, arg)] = fn.target
        mapping = ColumnMapping(dict(child.mapping.items()))
        for fn in p2.functions:
            argument = (
                None if fn.argument is None else child.mapping.map_expression(fn.argument)
            )
            key = (fn.func, None if argument is None else normalize(argument))
            existing = index.get(key)
            if existing is not None:
                mapping.add(fn.target, existing)
            else:
                merged.append(WindowAssignment(fn.target, fn.func, argument))
                index[key] = fn.target
        plan = Window(child.plan, p1.partition_by, tuple(merged))
        return FusionResult(plan, mapping)

    # -- generic unary operators (§III.G) ------------------------------------

    def _fuse_enforce_single_row(
        self, p1: EnforceSingleRow, p2: EnforceSingleRow
    ) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None or not child.is_exact:
            # Extra rows from the other consumer would fail the check.
            return None
        return FusionResult(EnforceSingleRow(child.plan), child.mapping)

    def _fuse_sort(self, p1: Sort, p2: Sort) -> FusionResult | None:
        child = self.fuse(p1.child, p2.child)
        if child is None:
            return None
        if len(p1.keys) != len(p2.keys):
            return None
        substitution = _substitution(child.mapping)
        for key1, key2 in zip(p1.keys, p2.keys):
            if key1.ascending != key2.ascending:
                return None
            if not equivalent(key1.expression, key2.expression, substitution):
                return None
        # Filters commute with sorting, so compensators pass through.
        return FusionResult(
            Sort(child.plan, p1.keys),
            child.mapping,
            child.left_filter,
            child.right_filter,
        )

    def _fuse_values(self, p1: Values, p2: Values) -> FusionResult | None:
        if p1.rows != p2.rows or len(p1.columns) != len(p2.columns):
            return None
        mapping = ColumnMapping()
        for source, target in zip(p2.columns, p1.columns):
            if source.dtype is not target.dtype:
                return None
            mapping.add(source, target)
        return FusionResult(p1, mapping)

    # -- structural fallback ------------------------------------------------

    def _fuse_structural(self, p1: PlanNode, p2: PlanNode) -> FusionResult | None:
        """Exact structural equivalence for operators with no dedicated
        fusion case (UnionAll, Limit, ScalarApply): two identical copies
        (modulo column identity) fuse into one, with no compensators.

        This is what makes fusion cover arbitrary CTE-duplicated
        subtrees even when they contain operators §III does not define
        a merge rule for.
        """
        mapping = structural_equivalence(p1, p2)
        if mapping is None:
            return None
        return FusionResult(p1, mapping)

    _HANDLERS = {}


Fuser._HANDLERS = {
    Scan: Fuser._fuse_scan,
    Filter: Fuser._fuse_filter,
    Project: Fuser._fuse_project,
    Join: Fuser._fuse_join,
    GroupBy: Fuser._fuse_group_by,
    MarkDistinct: Fuser._fuse_mark_distinct,
    Window: Fuser._fuse_window,
    EnforceSingleRow: Fuser._fuse_enforce_single_row,
    Sort: Fuser._fuse_sort,
    Values: Fuser._fuse_values,
}


def make_or_pair(left: Expression, right: Expression) -> Expression:
    from repro.algebra.expressions import make_or

    if left == TRUE or right == TRUE:
        return TRUE
    return make_or([left, right])


def _substitution(mapping: ColumnMapping) -> dict[int, Expression]:
    return {source.cid: ColumnRef(target) for source, target in mapping.items()}


def structural_equivalence(p1: PlanNode, p2: PlanNode) -> ColumnMapping | None:
    """If ``p1`` and ``p2`` are the same plan modulo column identity,
    the mapping from ``p2``'s columns to ``p1``'s; else None.

    Covers every operator; used by the structural fusion fallback and
    by rules that only need duplicate detection (e.g. redundant join
    elimination in §V.D).
    """
    mapping = ColumnMapping()

    def visit(a: PlanNode, b: PlanNode) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, UnionAll):
            if len(a.inputs) != len(b.inputs):
                return False
            if not all(visit(x, y) for x, y in zip(a.inputs, b.inputs)):
                return False
            for branch_a, branch_b in zip(a.input_columns, b.input_columns):
                if tuple(mapping.map_columns(branch_b)) != branch_a:
                    return False
            for out_a, out_b in zip(a.columns, b.columns):
                if out_a.dtype is not out_b.dtype:
                    return False
                mapping.add(out_b, out_a)
            return True
        if len(a.children) != len(b.children):
            return False
        if not all(visit(x, y) for x, y in zip(a.children, b.children)):
            return False
        substitution = _substitution(mapping)

        def exprs_equal(e1: Expression | None, e2: Expression | None) -> bool:
            if (e1 is None) != (e2 is None):
                return False
            if e1 is None:
                return True
            return equivalent(e1, e2, substitution)

        if isinstance(a, Scan):
            if a.table.lower() != b.table.lower():
                return False
            if a.source_names != b.source_names:
                return False
            if not exprs_equal(a.predicate, b.predicate):
                return False
            for col_a, col_b in zip(a.columns, b.columns):
                mapping.add(col_b, col_a)
            return True
        if isinstance(a, Values):
            if a.rows != b.rows or len(a.columns) != len(b.columns):
                return False
            for col_a, col_b in zip(a.columns, b.columns):
                mapping.add(col_b, col_a)
            return True
        if isinstance(a, Filter):
            return exprs_equal(a.condition, b.condition)
        if isinstance(a, Project):
            if len(a.assignments) != len(b.assignments):
                return False
            for (target_a, expr_a), (target_b, expr_b) in zip(a.assignments, b.assignments):
                if not exprs_equal(expr_a, expr_b):
                    return False
                mapping.add(target_b, target_a)
            return True
        if isinstance(a, Join):
            return a.kind is b.kind and exprs_equal(a.condition, b.condition)
        if isinstance(a, GroupBy):
            if tuple(mapping.map_columns(b.keys)) != a.keys:
                return False
            if len(a.aggregates) != len(b.aggregates):
                return False
            for agg_a, agg_b in zip(a.aggregates, b.aggregates):
                if agg_a.func != agg_b.func or agg_a.distinct != agg_b.distinct:
                    return False
                if not exprs_equal(agg_a.argument, agg_b.argument):
                    return False
                if not exprs_equal(agg_a.mask, agg_b.mask):
                    return False
                mapping.add(agg_b.target, agg_a.target)
            return True
        if isinstance(a, MarkDistinct):
            if tuple(mapping.map_columns(b.columns)) != a.columns:
                return False
            if not exprs_equal(a.mask, b.mask):
                return False
            mapping.add(b.marker, a.marker)
            return True
        if isinstance(a, Window):
            if tuple(mapping.map_columns(b.partition_by)) != a.partition_by:
                return False
            if len(a.functions) != len(b.functions):
                return False
            for fn_a, fn_b in zip(a.functions, b.functions):
                if fn_a.func != fn_b.func:
                    return False
                if not exprs_equal(fn_a.argument, fn_b.argument):
                    return False
                mapping.add(fn_b.target, fn_a.target)
            return True
        if isinstance(a, Sort):
            if len(a.keys) != len(b.keys):
                return False
            return all(
                ka.ascending == kb.ascending and exprs_equal(ka.expression, kb.expression)
                for ka, kb in zip(a.keys, b.keys)
            )
        if isinstance(a, Limit):
            return a.count == b.count
        if isinstance(a, EnforceSingleRow):
            return True
        from repro.algebra.operators import ScalarApply

        if isinstance(a, ScalarApply):
            if mapping.map_column(b.value) != a.value:
                return False
            mapping.add(b.output, a.output)
            return True
        return False

    if visit(p1, p2):
        return mapping
    return None
