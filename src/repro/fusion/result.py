"""Fusion results and their reconstruction semantics.

``Fuse(P1, P2)`` returns a :class:`FusionResult` ``(P, M, L, R)``:

* ``plan`` (P): the fused plan, whose schema includes all output
  columns of P1 plus, optionally, extra columns for P2;
* ``mapping`` (M): maps P2's output columns to columns of P;
* ``left_filter`` (L) / ``right_filter`` (R): compensating filters over
  P's output columns that restore P1 / P2:

      P1 = Project[outCols(P1)](Filter[L](P))
      P2 = Project[M(outCols(P2))](Filter[R](P))

:func:`reconstruct_left` / :func:`reconstruct_right` build those
compensated plans; the property-based tests execute them against the
originals to verify every fusion case end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import TRUE, ColumnRef, Expression
from repro.algebra.operators import Filter, PlanNode, Project
from repro.algebra.schema import Column, ColumnAllocator
from repro.fusion.mapping import ColumnMapping


@dataclass
class FusionResult:
    """The 4-tuple result of a successful fusion."""

    plan: PlanNode
    mapping: ColumnMapping
    left_filter: Expression = TRUE
    right_filter: Expression = TRUE

    @property
    def is_exact(self) -> bool:
        """True when no compensating filters are needed (the common
        CTE case: both inputs are the same subexpression)."""
        return self.left_filter == TRUE and self.right_filter == TRUE


def reconstruct_left(result: FusionResult, original: PlanNode) -> PlanNode:
    """The compensated plan equivalent to the original left input."""
    plan = result.plan
    if result.left_filter != TRUE:
        plan = Filter(plan, result.left_filter)
    assignments = tuple((c, ColumnRef(c)) for c in original.output_columns)
    return Project(plan, assignments)


def reconstruct_right(
    result: FusionResult, original: PlanNode, allocator: ColumnAllocator
) -> PlanNode:
    """The compensated plan equivalent to the original right input.

    Output columns are fresh (the originals belong to the discarded
    plan); they are produced positionally in the original's order.
    """
    plan = result.plan
    if result.right_filter != TRUE:
        plan = Filter(plan, result.right_filter)
    assignments = []
    for column in original.output_columns:
        mapped = result.mapping.map_column(column)
        assignments.append((allocator.like(column), ColumnRef(mapped)))
    return Project(plan, tuple(assignments))
