"""Catalog: table metadata, keys, partitioning, and statistics."""

from repro.catalog.catalog import Catalog, ColumnDef, TableDef

__all__ = ["Catalog", "TableDef", "ColumnDef"]
