"""Table metadata.

The catalog plays the role AWS Glue plays for Athena: it maps table
names to schemas over externally stored data, records primary keys and
the partition column (the 7 large TPC-DS fact tables are partitioned by
their date key, as in the paper's experimental setup), and carries the
row-count statistics the optimizer's cost heuristics consult (§IV.E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.schema import Column, ColumnAllocator
from repro.algebra.types import DataType, encoded_bytes
from repro.errors import CatalogError


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one stored column, used by the cardinality
    estimator behind §IV.E's 'local heuristics based on statistics'."""

    #: Number of distinct non-NULL values.
    ndv: int = 0
    #: Fraction of NULL values (0.0–1.0).
    null_fraction: float = 0.0
    #: Min/max over non-NULL values (None for all-NULL columns).
    min_value: object | None = None
    max_value: object | None = None


@dataclass(frozen=True)
class ColumnDef:
    """Schema entry for one stored column."""

    name: str
    dtype: DataType
    #: Average encoded bytes per value; only meaningful for STRING
    #: columns (others use the type's fixed width).
    avg_string_bytes: float | None = None


@dataclass(frozen=True)
class TableDef:
    """Schema + physical metadata for one table."""

    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    partition_column: str | None = None
    row_count: int = 0

    def __post_init__(self) -> None:
        names = [c.name.lower() for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        if self.partition_column is not None and self.partition_column.lower() not in names:
            raise CatalogError(
                f"partition column {self.partition_column!r} not in table {self.name!r}"
            )

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(col.name.lower() == name.lower() for col in self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


class Catalog:
    """A registry of :class:`TableDef` plus a shared column allocator.

    The allocator guarantees that every scan instance planned against
    this catalog gets globally fresh column ids — the property fusion's
    column mapping ``M`` depends on.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}
        self._column_stats: dict[tuple[str, str], ColumnStats] = {}
        self._versions: dict[str, int] = {}
        self.allocator = ColumnAllocator()

    def set_column_stats(self, table: str, column: str, stats: ColumnStats) -> None:
        self._column_stats[(table.lower(), column.lower())] = stats

    def column_stats(self, table: str, column: str) -> ColumnStats | None:
        return self._column_stats.get((table.lower(), column.lower()))

    def column_width(self, table: str, column: str) -> float:
        """Encoded bytes per value of one stored column (the average
        measured at load time for strings, the type's fixed width
        otherwise).  The cost model prices scans with it."""
        for c in self.table(table).columns:
            if c.name.lower() == column.lower():
                return encoded_bytes(c.dtype, c.avg_string_bytes)
        return encoded_bytes(DataType.STRING)

    def register(self, table: TableDef) -> None:
        """Register (or re-register) a table definition.

        Every registration bumps the table's *version*: re-registering
        after a data reload is how cached cross-query results over the
        old data get invalidated (``set_row_count``/``set_column_stats``
        deliberately do not bump — statistics refreshes do not change
        the stored bytes).
        """
        key = table.name.lower()
        self._tables[key] = table
        self._versions[key] = self._versions.get(key, 0) + 1

    def table_version(self, name: str) -> int:
        """Monotonic data version of ``name`` (0 if never registered)."""
        return self._versions.get(name.lower(), 0)

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} is not registered") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def fresh_scan_columns(self, name: str) -> tuple[tuple[Column, ...], tuple[str, ...]]:
        """Fresh column identities (plus source names) for one scan
        instance of ``name``."""
        table = self.table(name)
        columns = tuple(
            self.allocator.fresh(c.name, c.dtype) for c in table.columns
        )
        return columns, table.column_names

    def row_count(self, name: str) -> int:
        return self.table(name).row_count

    def set_row_count(self, name: str, count: int) -> None:
        table = self.table(name)
        self._tables[name.lower()] = TableDef(
            table.name,
            table.columns,
            table.primary_key,
            table.partition_column,
            count,
        )
