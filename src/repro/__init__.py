"""athena-fusion-repro: computation reuse via query fusion.

A from-scratch reproduction of *Computation Reuse via Fusion in Amazon
Athena* (ICDE 2022): the ``Fuse(P1, P2) -> (P, M, L, R)`` primitive
(§III), the fusion-based optimizer rules (§IV), and every substrate
they need — SQL frontend, logical algebra, rule-based optimizer,
streaming executor with bytes-scanned accounting, columnar partitioned
storage, and a synthetic TPC-DS workload (§V).

Quickstart::

    from repro import Session, generate_dataset
    from repro.optimizer import BASELINE, FUSION

    store = generate_dataset(scale=0.1)
    session = Session(store, FUSION)
    result = session.execute("SELECT count(*) FROM store_sales")
    print(result.rows, result.metrics.summary())
"""

from repro.engine.session import QueryResult, Session
from repro.fusion import Fuser, FusionResult
from repro.optimizer import BASELINE, FUSION, OptimizerConfig, optimize
from repro.tpcds.generator import generate_dataset

__version__ = "1.0.0"

__all__ = [
    "Session",
    "QueryResult",
    "Fuser",
    "FusionResult",
    "OptimizerConfig",
    "BASELINE",
    "FUSION",
    "optimize",
    "generate_dataset",
    "__version__",
]
