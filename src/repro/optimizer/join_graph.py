"""Flattened join regions — the §IV.E n-ary machinery.

The paper extends its join-based rules (GroupByJoinToWindow,
JoinOnKeys) to run before join reordering: "after they match a root
join operator, we (i) recursively traverse its inputs to conceptually
obtain an n-ary join, and (ii) attempt to apply rules pairwise to
specific join inputs (and intermediate rule results) a quadratic number
of times."

:class:`JoinGraph` is that conceptual n-ary join: a bag of input plans,
a pool of conjuncts (from inner-join conditions and interposed
filters), and the semi/anti joins encountered.  Rules mutate the graph
(fuse two inputs into one, substitute columns, consume conjuncts) and
:func:`rebuild` re-emits a left-deep operator tree whose output columns
are exactly the original region's (via an identity-preserving
compatibility projection), so the surrounding plan is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    Expression,
    IsNull,
    Not,
    columns_in,
    conjuncts,
    make_and,
    substitute,
)
from repro.algebra.operators import (
    Filter,
    Join,
    JoinKind,
    PlanNode,
    Project,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext


@dataclass
class SemiEntry:
    """A semi or anti join hoisted out of the region."""

    kind: JoinKind
    right: PlanNode
    condition: Expression


@dataclass
class JoinGraph:
    """A flattened inner-join region."""

    inputs: list[PlanNode]
    conjuncts: list[Expression]
    semis: list[SemiEntry]
    #: The region's original output columns (parents reference these).
    output_columns: tuple[Column, ...]
    #: Replacements for columns of fused-away inputs, applied at rebuild.
    substitution: dict[int, Expression] = field(default_factory=dict)

    def copy(self) -> "JoinGraph":
        """Snapshot for cost-gated speculation: rules mutate the
        graph's lists and semi entries in place, so a gate that may
        decline needs an independent graph to rebuild the original
        region from.  Input plans are shared (immutable), which also
        lets the cost model price the untouched subtrees once."""
        return JoinGraph(
            list(self.inputs),
            list(self.conjuncts),
            [SemiEntry(s.kind, s.right, s.condition) for s in self.semis],
            self.output_columns,
            dict(self.substitution),
        )

    def add_substitution(self, entries: dict[int, Expression]) -> None:
        """Merge new replacement entries, composing existing ones
        through them (so chains like t→a, a→b resolve to t→b)."""
        if not entries:
            return
        for cid, expr in list(self.substitution.items()):
            self.substitution[cid] = substitute(expr, entries)
        for cid, expr in entries.items():
            self.substitution.setdefault(cid, expr)

    def apply_substitution(self) -> None:
        """Rewrite conjuncts and semi conditions through the current
        substitution, dropping tautologies introduced by fusion
        (``c = c`` becomes ``c IS NOT NULL``)."""
        if not self.substitution:
            return
        new_conjuncts: list[Expression] = []
        for term in self.conjuncts:
            term = substitute(term, self.substitution)
            term = _self_equality_to_not_null(term)
            if term != TRUE and term not in new_conjuncts:
                new_conjuncts.append(term)
        self.conjuncts = new_conjuncts
        for semi in self.semis:
            semi.condition = substitute(semi.condition, self.substitution)


def _self_equality_to_not_null(term: Expression) -> Expression:
    if (
        isinstance(term, Comparison)
        and term.op == "="
        and isinstance(term.left, ColumnRef)
        and isinstance(term.right, ColumnRef)
        and term.left.column == term.right.column
    ):
        return Not(IsNull(term.left))
    return term


def flatten_join_region(plan: PlanNode) -> JoinGraph | None:
    """Flatten a tree of inner/cross joins, filters, semi/anti joins,
    and pure-renaming projections rooted at ``plan``.  Returns None
    when the root is not a join region (no join found on the spine).

    Renaming projections on the spine are absorbed into the graph's
    substitution (the rebuild's compatibility projection restores
    them), so patterns like §V.D's distinct-join inputs sit at the same
    n-ary level even when the binder wrapped them in projections.
    """
    inputs: list[PlanNode] = []
    pool: list[Expression] = []
    semis: list[SemiEntry] = []
    layers: list[dict[int, Expression]] = []
    saw_join = False

    def walk(node: PlanNode) -> None:
        nonlocal saw_join
        if isinstance(node, Filter):
            pool.extend(conjuncts(node.condition))
            walk(node.child)
            return
        if isinstance(node, Project) and all(
            isinstance(expr, ColumnRef) for _, expr in node.assignments
        ):
            layer = {
                target.cid: expr
                for target, expr in node.assignments
                if isinstance(expr, ColumnRef) and target != expr.column
            }
            if layer:
                layers.append(layer)
            walk(node.child)
            return
        if isinstance(node, Join):
            if node.kind in (JoinKind.INNER, JoinKind.CROSS):
                saw_join = True
                pool.extend(conjuncts(node.condition))
                walk(node.left)
                walk(node.right)
                return
            if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
                saw_join = True
                semis.append(SemiEntry(node.kind, node.right, node.condition or TRUE))
                walk(node.left)
                return
            # LEFT joins do not commute with the region: opaque input.
        inputs.append(node)

    walk(plan)
    if not saw_join:
        return None
    graph = JoinGraph(inputs, pool, semis, plan.output_columns)
    for layer in layers:  # outer layers first; add_substitution composes
        graph.add_substitution(layer)
    return graph


def rebuild_join_region(
    graph: JoinGraph, ctx: OptimizerContext, project_outputs: bool = True
) -> PlanNode:
    """Re-emit the region as a left-deep join tree.

    Conjuncts attach at the lowest join where all referenced columns
    are available; leftovers become a top filter.  Semi/anti joins are
    re-applied above the joins.  A final projection restores the
    region's original output columns (identity-preserving, applying the
    substitution for fused-away columns); pass ``project_outputs=False``
    to get the raw join tree with its natural schema.
    """
    graph.apply_substitution()
    if not graph.inputs:
        raise ValueError("join region has no inputs")

    pending = list(graph.conjuncts)
    plan = graph.inputs[0]
    available = set(plan.output_columns)

    def take_covered() -> list[Expression]:
        nonlocal pending
        taken = [c for c in pending if columns_in(c) <= available]
        pending = [c for c in pending if c not in taken]
        return taken

    # Conjuncts fully covered by the first input become a filter on it.
    first = take_covered()
    if first:
        plan = Filter(plan, make_and(first))

    for nxt in graph.inputs[1:]:
        available |= set(nxt.output_columns)
        condition = take_covered()
        if condition:
            plan = Join(JoinKind.INNER, plan, nxt, make_and(condition))
        else:
            plan = Join(JoinKind.CROSS, plan, nxt)

    for semi in graph.semis:
        plan = Join(semi.kind, plan, semi.right, semi.condition)

    if pending:
        plan = Filter(plan, make_and(pending))

    if not project_outputs:
        return plan

    # Compatibility projection: same output column identities as before.
    assignments = []
    identity = True
    for column in graph.output_columns:
        expr = graph.substitution.get(column.cid)
        if expr is None:
            expr = ColumnRef(column)
        if not (isinstance(expr, ColumnRef) and expr.column == column):
            identity = False
        assignments.append((column, expr))
    if identity and tuple(plan.output_columns) == graph.output_columns:
        return plan
    return Project(plan, tuple(assignments))


def peel_renaming(plan: PlanNode) -> tuple[PlanNode, dict[int, Column]]:
    """Strip pure column-renaming projections, returning the inner plan
    and a map from outer (peeled target) column ids to inner columns.

    Fusion rules use this to see the paper's patterns through the
    projections the binder interposes (§IV.E: "there could be a Project
    operator in between the Join and GroupBy").
    """
    exposure: dict[int, Column] = {}
    while isinstance(plan, Project) and all(
        isinstance(expr, ColumnRef) for _, expr in plan.assignments
    ):
        layer = {
            target.cid: expr.column
            for target, expr in plan.assignments
            if isinstance(expr, ColumnRef)
        }
        if exposure:
            exposure = {
                outer: layer.get(inner.cid, inner) for outer, inner in exposure.items()
            }
        else:
            exposure = dict(layer)
        # Newly exposed columns of this layer (identity targets).
        for target_cid, inner in layer.items():
            exposure.setdefault(target_cid, inner)
        plan = plan.child
    return plan, exposure


class EquivalenceClasses:
    """Union-find over columns connected by equality conjuncts."""

    def __init__(self, terms: list[Expression]):
        self._parent: dict[int, int] = {}
        for term in terms:
            if (
                isinstance(term, Comparison)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                self.union(term.left.column, term.right.column)

    def _find(self, cid: int) -> int:
        parent = self._parent.setdefault(cid, cid)
        if parent != cid:
            root = self._find(parent)
            self._parent[cid] = root
            return root
        return cid

    def union(self, a: Column, b: Column) -> None:
        ra, rb = self._find(a.cid), self._find(b.cid)
        if ra != rb:
            self._parent[ra] = rb

    def connected(self, a: Column, b: Column) -> bool:
        return self._find(a.cid) == self._find(b.cid)
