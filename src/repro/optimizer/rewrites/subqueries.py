"""Subquery removal and decorrelation.

Two classical rules the paper's §V pipelines depend on:

* :class:`RemoveScalarSubqueries` — "the engine first performs subquery
  removal and transforms the various expressions in the CASE statements
  into relational subtrees connected via cross products" (§V.B): an
  uncorrelated ScalarApply becomes a cross join with the (single-row)
  subquery.

* :class:`DecorrelateScalarAggregates` — the Galindo-Legaria/Joshi [20]
  rewrite: a correlated scalar-aggregate subquery with equality
  correlation becomes a join with a group-by on the correlation keys.
  "The query can be decorrelated, which results in a pattern that
  triggers the GroupByJoinToWindow rule" (§V.A).  Restricted to
  NULL-on-empty aggregates (sum/avg/min/max) consumed by a
  NULL-rejecting filter, where the inner-join form is equivalent.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    Expression,
    columns_in,
    conjuncts,
    make_and,
)
from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    PlanNode,
    Project,
    ScalarApply,
    Sort,
    Values,
    referenced_columns,
)
from repro.algebra.schema import Column
from repro.algebra.visitors import walk_plan
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import RewriteRule

#: Aggregates that return NULL over an empty group, making the
#: inner-join decorrelation equivalent under a NULL-rejecting consumer.
_NULL_ON_EMPTY = ("sum", "avg", "min", "max", "stddev_samp")


def _guaranteed_single_row(plan: PlanNode) -> bool:
    if isinstance(plan, GroupBy):
        return plan.is_scalar
    if isinstance(plan, EnforceSingleRow):
        return True
    if isinstance(plan, Values):
        return len(plan.rows) == 1
    if isinstance(plan, (Project, Sort)):
        return _guaranteed_single_row(plan.children[0])
    return False


class RemoveScalarSubqueries(RewriteRule):
    """Uncorrelated ScalarApply → cross join with the subquery."""

    name = "remove_scalar_subqueries"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, ScalarApply):
            return None
        if node.free_columns:
            return None
        subquery = node.subquery
        if not _guaranteed_single_row(subquery):
            subquery = EnforceSingleRow(subquery)
        joined = Join(JoinKind.CROSS, node.input, subquery)
        assignments = tuple(
            (c, ColumnRef(c)) for c in node.input.output_columns
        ) + ((node.output, ColumnRef(node.value)),)
        return Project(joined, assignments)


class DecorrelateScalarAggregates(RewriteRule):
    """Correlated scalar-aggregate ScalarApply under a NULL-rejecting
    Filter → inner join with a keyed GroupBy."""

    name = "decorrelate_scalar_aggregates"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, Filter):
            return None
        if not isinstance(node.child, ScalarApply):
            return None
        apply = node.child
        free = apply.free_columns
        if not free:
            return None
        if not self._null_rejecting(node.condition, apply.output):
            return None
        rebuilt = self._decorrelate(apply, free, ctx)
        if rebuilt is None:
            return None
        return Filter(rebuilt, node.condition)

    @staticmethod
    def _null_rejecting(condition: Expression, output: Column) -> bool:
        """Is there a top-level comparison conjunct over ``output``?
        (Then rows where the subquery is NULL are filtered either way.)"""
        for term in conjuncts(condition):
            if isinstance(term, Comparison) and output in columns_in(term):
                return True
        return False

    def _decorrelate(
        self, apply: ScalarApply, free: set[Column], ctx: OptimizerContext
    ) -> PlanNode | None:
        # Peel renaming/computed projections above the scalar GroupBy.
        projections: list[Project] = []
        sub = apply.subquery
        while isinstance(sub, Project):
            if any(free & columns_in(e) for _, e in sub.assignments):
                return None
            projections.append(sub)
            sub = sub.child
        if not isinstance(sub, GroupBy) or not sub.is_scalar:
            return None
        for agg in sub.aggregates:
            if agg.func not in _NULL_ON_EMPTY:
                return None  # count() is 0 on empty: inner join unsound
            exprs = [agg.mask] + ([agg.argument] if agg.argument is not None else [])
            if any(free & columns_in(e) for e in exprs):
                return None

        below = sub.child
        correlation: Expression = TRUE
        inner = below
        if isinstance(below, Filter):
            correlation = below.condition
            inner = below.child
        if self._has_free_references(inner, free):
            return None

        inner_cols = set(inner.output_columns)
        keys: list[Column] = []
        outer_cols: list[Column] = []
        residual: list[Expression] = []
        for term in conjuncts(correlation):
            pair = self._correlation_pair(term, inner_cols, free)
            if pair is not None:
                inner_col, outer_col = pair
                if inner_col not in keys:
                    keys.append(inner_col)
                    outer_cols.append(outer_col)
                elif outer_cols[keys.index(inner_col)] != outer_col:
                    return None  # same inner key correlated twice
                continue
            if free & columns_in(term):
                return None  # unsupported correlation shape
            residual.append(term)
        if not keys:
            return None

        grouped_child = Filter(inner, make_and(residual)) if residual else inner
        grouped: PlanNode = GroupBy(grouped_child, tuple(keys), sub.aggregates)
        # Re-apply peeled projections, passing the key columns through.
        for projection in reversed(projections):
            assignments = projection.assignments + tuple(
                (k, ColumnRef(k)) for k in keys
            )
            grouped = Project(grouped, assignments)

        condition = make_and(
            Comparison("=", ColumnRef(outer), ColumnRef(inner_col))
            for inner_col, outer in zip(keys, outer_cols)
        )
        joined = Join(JoinKind.INNER, apply.input, grouped, condition)
        assignments = tuple(
            (c, ColumnRef(c)) for c in apply.input.output_columns
        ) + ((apply.output, ColumnRef(apply.value)),)
        return Project(joined, assignments)

    @staticmethod
    def _has_free_references(plan: PlanNode, free: set[Column]) -> bool:
        for node in walk_plan(plan):
            if referenced_columns(node) & free:
                return True
        return False

    @staticmethod
    def _correlation_pair(
        term: Expression, inner_cols: set[Column], free: set[Column]
    ) -> tuple[Column, Column] | None:
        if not (isinstance(term, Comparison) and term.op == "="):
            return None
        left, right = term.left, term.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        if left.column in inner_cols and right.column in free:
            return left.column, right.column
        if right.column in inner_cols and left.column in free:
            return right.column, left.column
        return None
