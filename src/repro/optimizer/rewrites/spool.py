"""Spooling of duplicated common subexpressions.

The paper's general fallback ("the general case should be handled by
spooling intermediate results", part of Athena's future roadmap; the
Resin lineage): when two subtrees that fuse *exactly* survive in a plan
— because no §IV fusion rule covered their context — materialize the
fused subexpression once and let both consumers replay it through
compensating projections.

Using ``Fuse`` for duplicate detection (rather than strict structural
equality) matters: projection pruning legitimately narrows the two
copies to different column subsets, and exact fusion still recognizes
them, producing the superset plan to materialize plus the column
mapping each consumer needs.

The pass runs after the fusion rules (fusion is preferred where
applicable; the paper argues, and our ablation bench measures, that the
fused form beats materialization by avoiding both the write and the
repeated reads).  Disabled by default; enable with
``OptimizerConfig(enable_spooling=True)``.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef
from repro.algebra.operators import (
    PlanNode,
    Project,
    ScalarApply,
    Spool,
    referenced_columns,
)
from repro.algebra.visitors import count_nodes, scan_tables, walk_plan
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass


class SpoolDuplicateSubtrees(PlanPass):
    name = "spool_duplicate_subtrees"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        changed = True
        while changed:
            changed = False
            pair = self._find_duplicate_pair(plan, ctx)
            if pair is None:
                break
            first, second, result = pair
            producer, consumer = self._build_spools(first, second, result, ctx)
            plan = _replace_identical(plan, first, producer, second, consumer)
            ctx.record(self.name)
            changed = True
        return plan

    def _find_duplicate_pair(self, plan: PlanNode, ctx: OptimizerContext):
        """The largest pair of subtrees that fuse exactly."""
        buckets: dict[tuple, list[PlanNode]] = {}
        for node in walk_plan(plan):
            if isinstance(node, (Spool, ScalarApply)):
                continue
            if count_nodes(node, Spool):
                continue  # already shared
            if _has_free_references(node):
                # A subtree referencing correlated outer columns (it
                # sits inside a ScalarApply subquery) must re-evaluate
                # per outer row: caching it would replay stale rows.
                continue
            if not ctx.worth_fusing(node):
                continue
            if count_nodes(node) < 2:
                continue
            signature = tuple(sorted(scan_tables(node)))
            buckets.setdefault(signature, []).append(node)

        best = None
        for nodes in buckets.values():
            if len(nodes) < 2:
                continue
            for i, first in enumerate(nodes):
                for second in nodes[i + 1 :]:
                    if second is first or _contains(first, second) or _contains(second, first):
                        continue
                    result = ctx.fuser.fuse(first, second)
                    if result is None or not result.is_exact:
                        continue
                    size = count_nodes(first)
                    if best is None or size > best[0]:
                        best = (size, first, second, result)
        if best is None:
            return None
        return best[1], best[2], best[3]

    @staticmethod
    def _build_spools(first, second, result, ctx: OptimizerContext):
        """The producer/consumer plans over the shared materialization.

        Both wrap Spool nodes carrying the same id over the *fused*
        plan; projections restore each original's exact schema (the
        consumer's through the fusion mapping, over fresh column ids so
        the two spool instances never collide in one schema).
        """
        fused = result.plan
        producer_spool = Spool(fused, ctx.next_spool_id(), fused.output_columns)
        producer = Project(
            producer_spool,
            tuple((c, ColumnRef(c)) for c in first.output_columns),
        )

        fresh = tuple(ctx.allocator.like(c) for c in fused.output_columns)
        consumer_spool = Spool(fused, producer_spool.spool_id, fresh)
        by_cid = {c.cid: f for c, f in zip(fused.output_columns, fresh)}
        assignments = []
        for column in second.output_columns:
            mapped = result.mapping.map_column(column)
            assignments.append((column, ColumnRef(by_cid[mapped.cid])))
        consumer = Project(consumer_spool, tuple(assignments))
        return producer, consumer


def _has_free_references(plan: PlanNode) -> bool:
    """True when some expression in the subtree references a column no
    node inside the subtree produces (a correlated outer column)."""
    produced: set = set()
    referenced: set = set()
    for node in walk_plan(plan):
        produced |= set(node.output_columns)
        referenced |= referenced_columns(node)
    return bool(referenced - produced)


def _contains(outer: PlanNode, inner: PlanNode) -> bool:
    return any(node is inner for node in walk_plan(outer))


def _replace_identical(
    plan: PlanNode,
    first: PlanNode,
    producer: PlanNode,
    second: PlanNode,
    consumer: PlanNode,
) -> PlanNode:
    """Replace exactly the two subtree *objects* (by identity)."""
    if plan is first:
        return producer
    if plan is second:
        return consumer
    children = plan.children
    if not children:
        return plan
    new_children = tuple(
        _replace_identical(child, first, producer, second, consumer)
        for child in children
    )
    if new_children != children:
        plan = plan.with_children(new_children)
    return plan
