"""Projection pruning.

Top-down pass computing the columns each operator must produce and
trimming everything else: scan column lists (this is what makes the
bytes-scanned accounting honest — unreferenced columns are never read),
projection assignments, aggregate lists, window functions, MarkDistinct
markers, UnionAll positions, and ScalarApply nodes whose output is
dead.
"""

from __future__ import annotations

from repro.algebra.expressions import columns_in
from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    ScalarApply,
    Scan,
    Sort,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass


class ProjectionPruning(PlanPass):
    name = "projection_pruning"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        return self._prune(plan, set(plan.output_columns))

    def _prune(self, plan: PlanNode, needed: set[Column]) -> PlanNode:
        if isinstance(plan, Scan):
            keep = set(needed)
            if plan.predicate is not None:
                keep |= columns_in(plan.predicate)
            pairs = [
                (col, src)
                for col, src in zip(plan.columns, plan.source_names)
                if col in keep
            ]
            if len(pairs) == len(plan.columns):
                return plan
            return Scan(
                plan.table,
                tuple(col for col, _ in pairs),
                tuple(src for _, src in pairs),
                plan.predicate,
            )

        if isinstance(plan, Values):
            return plan

        if isinstance(plan, Filter):
            child = self._prune(plan.child, needed | columns_in(plan.condition))
            return Filter(child, plan.condition)

        if isinstance(plan, Project):
            kept = tuple(
                (target, expr) for target, expr in plan.assignments if target in needed
            )
            child_needed: set[Column] = set()
            for _, expr in kept:
                child_needed |= columns_in(expr)
            child = self._prune(plan.child, child_needed)
            return Project(child, kept)

        if isinstance(plan, Join):
            cond_cols = columns_in(plan.condition) if plan.condition is not None else set()
            left_cols = set(plan.left.output_columns)
            right_cols = set(plan.right.output_columns)
            left_needed = (needed | cond_cols) & left_cols
            right_needed = cond_cols & right_cols
            if plan.kind not in (JoinKind.SEMI, JoinKind.ANTI):
                right_needed |= needed & right_cols
            left = self._prune(plan.left, left_needed)
            right = self._prune(plan.right, right_needed)
            return Join(plan.kind, left, right, plan.condition)

        if isinstance(plan, GroupBy):
            kept = tuple(a for a in plan.aggregates if a.target in needed)
            child_needed = set(plan.keys)
            for a in kept:
                if a.argument is not None:
                    child_needed |= columns_in(a.argument)
                child_needed |= columns_in(a.mask)
            child = self._prune(plan.child, child_needed)
            return GroupBy(child, plan.keys, kept)

        if isinstance(plan, MarkDistinct):
            if plan.marker not in needed:
                return self._prune(plan.child, needed)
            child_needed = (needed - {plan.marker}) | set(plan.columns)
            child_needed |= columns_in(plan.mask)
            child = self._prune(plan.child, child_needed)
            return MarkDistinct(child, plan.columns, plan.marker, plan.mask)

        if isinstance(plan, Window):
            kept = tuple(f for f in plan.functions if f.target in needed)
            if not kept:
                return self._prune(plan.child, needed)
            child_needed = (needed - {f.target for f in plan.functions}) | set(
                plan.partition_by
            )
            for f in kept:
                if f.argument is not None:
                    child_needed |= columns_in(f.argument)
            child = self._prune(plan.child, child_needed)
            return Window(child, plan.partition_by, kept)

        if isinstance(plan, UnionAll):
            positions = [i for i, col in enumerate(plan.columns) if col in needed]
            columns = tuple(plan.columns[i] for i in positions)
            new_inputs = []
            new_branches = []
            for child, branch in zip(plan.inputs, plan.input_columns):
                branch_cols = tuple(branch[i] for i in positions)
                new_inputs.append(self._prune(child, set(branch_cols)))
                new_branches.append(branch_cols)
            return UnionAll(tuple(new_inputs), columns, tuple(new_branches))

        if isinstance(plan, Sort):
            child_needed = set(needed)
            for key in plan.keys:
                child_needed |= columns_in(key.expression)
            return Sort(self._prune(plan.child, child_needed), plan.keys)

        if isinstance(plan, Limit):
            return Limit(self._prune(plan.child, needed), plan.count)

        if isinstance(plan, EnforceSingleRow):
            # Arity must be preserved (the operator pads NULLs on empty
            # input), so pass the child's full schema through.
            child = self._prune(plan.child, set(plan.child.output_columns))
            return EnforceSingleRow(child)

        if isinstance(plan, ScalarApply):
            if plan.output not in needed:
                return self._prune(plan.input, needed)
            input_needed = (needed - {plan.output}) | plan.free_columns
            new_input = self._prune(plan.input, input_needed)
            new_sub = self._prune(plan.subquery, {plan.value})
            return ScalarApply(new_input, new_sub, plan.value, plan.output)

        children = plan.children
        if children:
            new_children = tuple(
                self._prune(c, set(c.output_columns)) for c in children
            )
            if new_children != children:
                plan = plan.with_children(new_children)
        return plan
