"""Predicate pushdown.

Moves filter conjuncts as close to the scans as possible, turning
cross joins (the binder's comma-join output) into inner joins with
proper conditions along the way.  Fusion's join rules (§IV.A/B) need
join conditions in place, and partition pruning needs predicates at the
scans, so this pass runs before the fusion rules in *both* pipelines —
it is part of the paper's baseline rule set.

Safety rules per operator are conservative; anything that cannot be
pushed stays in a Filter above the operator.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Expression,
    Literal,
    columns_in,
    conjuncts,
    make_and,
    substitute,
)
from repro.algebra.operators import (
    Filter,
    GroupBy,
    Join,
    JoinKind,
    PlanNode,
    Project,
    ScalarApply,
    Scan,
    Sort,
    UnionAll,
    Window,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass


def _covered(expr: Expression, columns: set[Column]) -> bool:
    return columns_in(expr) <= columns


class PredicatePushdown(PlanPass):
    name = "predicate_pushdown"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        return self._push(plan, [])

    def _wrap(self, plan: PlanNode, remaining: list[Expression]) -> PlanNode:
        if not remaining:
            return plan
        return Filter(plan, make_and(remaining))

    def _push(self, plan: PlanNode, pending: list[Expression]) -> PlanNode:
        if isinstance(plan, Filter):
            return self._push(plan.child, pending + conjuncts(plan.condition))

        if isinstance(plan, Project):
            # Only push a conjunct through when every projection column
            # it touches is a plain column reference — inlining computed
            # expressions would re-evaluate them (defeating, e.g., the
            # mask-factoring projections of §V.B-shaped plans).
            inline = {target.cid: expr for target, expr in plan.assignments}
            cheap = {
                target.cid
                for target, expr in plan.assignments
                if isinstance(expr, (ColumnRef,)) or isinstance(expr, Literal)
            }
            pushed = []
            above = []
            for conjunct in pending:
                if all(c.cid in cheap for c in columns_in(conjunct)):
                    pushed.append(substitute(conjunct, inline))
                else:
                    above.append(conjunct)
            child = self._push(plan.child, pushed)
            return self._wrap(Project(child, plan.assignments), above)

        if isinstance(plan, Join):
            return self._push_join(plan, pending)

        if isinstance(plan, GroupBy):
            keys = set(plan.keys)
            below = [c for c in pending if _covered(c, keys)]
            above = [c for c in pending if not _covered(c, keys)]
            child = self._push(plan.child, below)
            return self._wrap(GroupBy(child, plan.keys, plan.aggregates), above)

        if isinstance(plan, Window):
            partition = set(plan.partition_by)
            below = [c for c in pending if _covered(c, partition)]
            above = [c for c in pending if not _covered(c, partition)]
            child = self._push(plan.child, below)
            return self._wrap(Window(child, plan.partition_by, plan.functions), above)

        if isinstance(plan, UnionAll):
            new_inputs = []
            for child, branch in zip(plan.inputs, plan.input_columns):
                mapping = {
                    out.cid: ColumnRef(src) for out, src in zip(plan.columns, branch)
                }
                branch_conjuncts = [substitute(c, mapping) for c in pending]
                new_inputs.append(self._push(child, branch_conjuncts))
            return UnionAll(tuple(new_inputs), plan.columns, plan.input_columns)

        if isinstance(plan, Scan):
            available = set(plan.columns)
            absorbed = [c for c in pending if _covered(c, available)]
            above = [c for c in pending if not _covered(c, available)]
            if absorbed:
                existing = conjuncts(plan.predicate)
                plan = plan.with_predicate(make_and(existing + absorbed))
            return self._wrap(plan, above)

        if isinstance(plan, Sort):
            child = self._push(plan.child, pending)
            return Sort(child, plan.keys)

        if isinstance(plan, ScalarApply):
            inputs = set(plan.input.output_columns)
            below = [c for c in pending if _covered(c, inputs)]
            above = [c for c in pending if not _covered(c, inputs)]
            new_input = self._push(plan.input, below)
            new_sub = self._push(plan.subquery, [])
            return self._wrap(
                ScalarApply(new_input, new_sub, plan.value, plan.output), above
            )

        # MarkDistinct, Limit, EnforceSingleRow, Values, …: do not push
        # through; recurse into children with an empty pool.
        children = plan.children
        if children:
            new_children = tuple(self._push(c, []) for c in children)
            if new_children != children:
                plan = plan.with_children(new_children)
        return self._wrap(plan, pending)

    def _push_join(self, plan: Join, pending: list[Expression]) -> PlanNode:
        left_cols = set(plan.left.output_columns)
        right_cols = set(plan.right.output_columns)

        if plan.kind in (JoinKind.INNER, JoinKind.CROSS):
            pool = pending + conjuncts(plan.condition)
            to_left = [c for c in pool if _covered(c, left_cols)]
            to_right = [c for c in pool if _covered(c, right_cols) and c not in to_left]
            mixed = [c for c in pool if c not in to_left and c not in to_right]
            bad = [c for c in mixed if not _covered(c, left_cols | right_cols)]
            mixed = [c for c in mixed if c not in bad]
            left = self._push(plan.left, to_left)
            right = self._push(plan.right, to_right)
            if mixed:
                joined = Join(JoinKind.INNER, left, right, make_and(mixed))
            else:
                joined = Join(JoinKind.CROSS, left, right)
            return self._wrap(joined, bad)

        if plan.kind is JoinKind.LEFT:
            to_left = [c for c in pending if _covered(c, left_cols)]
            above = [c for c in pending if not _covered(c, left_cols)]
            condition_pool = conjuncts(plan.condition)
            cond_to_right = [c for c in condition_pool if _covered(c, right_cols)]
            cond_keep = [c for c in condition_pool if c not in cond_to_right]
            left = self._push(plan.left, to_left)
            right = self._push(plan.right, cond_to_right)
            condition = make_and(cond_keep) if cond_keep else TRUE
            return self._wrap(Join(JoinKind.LEFT, left, right, condition), above)

        # SEMI / ANTI
        to_left = [c for c in pending if _covered(c, left_cols)]
        above = [c for c in pending if not _covered(c, left_cols)]
        condition_pool = conjuncts(plan.condition)
        cond_to_right = [c for c in condition_pool if _covered(c, right_cols)]
        cond_keep = [c for c in condition_pool if c not in cond_to_right]
        left = self._push(plan.left, to_left)
        right = self._push(plan.right, cond_to_right)
        condition = make_and(cond_keep) if cond_keep else TRUE
        return self._wrap(Join(plan.kind, left, right, condition), above)
