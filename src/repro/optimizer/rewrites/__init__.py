"""Classical rewrite rules (the engine's baseline rule set)."""

from repro.optimizer.rewrites.distinct import LowerDistinctAggregates
from repro.optimizer.rewrites.facts import FactSimplify
from repro.optimizer.rewrites.join_order import GreedyJoinOrder
from repro.optimizer.rewrites.masks import FactorAggregateMasks
from repro.optimizer.rewrites.pruning import ProjectionPruning
from repro.optimizer.rewrites.pushdown import PredicatePushdown
from repro.optimizer.rewrites.reuse import CrossQueryReuse
from repro.optimizer.rewrites.semijoin import DistinctPushdown, SemiJoinToDistinctJoin
from repro.optimizer.rewrites.spool import SpoolDuplicateSubtrees
from repro.optimizer.rewrites.simplify import (
    MergeProjections,
    PruneUnionBranches,
    RemoveTrivialFilters,
    SimplifyExpressions,
)
from repro.optimizer.rewrites.subqueries import (
    DecorrelateScalarAggregates,
    RemoveScalarSubqueries,
)

__all__ = [
    "SimplifyExpressions",
    "FactSimplify",
    "RemoveTrivialFilters",
    "MergeProjections",
    "PruneUnionBranches",
    "PredicatePushdown",
    "ProjectionPruning",
    "RemoveScalarSubqueries",
    "DecorrelateScalarAggregates",
    "LowerDistinctAggregates",
    "SemiJoinToDistinctJoin",
    "DistinctPushdown",
    "FactorAggregateMasks",
    "SpoolDuplicateSubtrees",
    "GreedyJoinOrder",
    "CrossQueryReuse",
]
