"""Fact-driven simplification (derived-property rewrites).

Uses the abstract interpreter (:mod:`repro.algebra.analysis`) the way
a bottom-up optimizer uses derived properties: filter and join
conditions fold against the child's derived column facts
(always-TRUE conjuncts disappear, never-TRUE filters become empty
relations), and DISTINCT-shaped operators whose input is provably
duplicate-free on the relevant columns collapse to projections.

The distinctness rewrites are sound under the engines' grouping
semantics — NULLs compare equal and NaN canonicalizes via
``canon_key`` — which is exactly the equivalence the analyzer's key
facts are stated in.
"""

from __future__ import annotations

from repro.algebra.analysis import FactAnalyzer
from repro.algebra.expressions import FALSE, NULL, TRUE, ColumnRef
from repro.algebra.operators import (
    Filter,
    GroupBy,
    MarkDistinct,
    PlanNode,
    Project,
    Values,
)
from repro.algebra.simplify import simplify_with_facts
from repro.algebra.visitors import transform_up
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass


class FactSimplify(PlanPass):
    """Fold predicates and drop redundant DISTINCTs using derived facts."""

    name = "fact_simplify"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        analyzer = FactAnalyzer(ctx.catalog)
        changed = False

        def fix(node: PlanNode) -> PlanNode:
            nonlocal changed
            rewritten = self._rewrite(node, analyzer)
            if rewritten is None:
                return node
            changed = True
            return rewritten

        result = transform_up(plan, fix)
        if changed:
            ctx.record(self.name)
        return result

    def _rewrite(self, node: PlanNode, analyzer: FactAnalyzer) -> PlanNode | None:
        if isinstance(node, Filter):
            child_facts = analyzer.facts(node.child)
            condition = simplify_with_facts(node.condition, child_facts.columns)
            if condition == TRUE:
                return node.child
            if condition == FALSE or condition == NULL:
                # In a filter context NULL keeps no rows, same as FALSE.
                return Values(node.output_columns, ())
            if condition != node.condition:
                return Filter(node.child, condition)
            return None
        if isinstance(node, GroupBy):
            # GROUP BY over provably-unique keys with no aggregates is
            # the identity (modulo column order, which GroupBy already
            # pins to its key list).
            if node.aggregates or not node.keys:
                return None
            child_facts = analyzer.facts(node.child)
            if not child_facts.is_unique(k.cid for k in node.keys):
                return None
            assignments = tuple((key, ColumnRef(key)) for key in node.keys)
            return Project(node.child, assignments)
        if isinstance(node, MarkDistinct):
            # When every unmasked row is provably the first of its key
            # group, the marker is constantly TRUE.
            if node.mask != TRUE:
                return None
            child_facts = analyzer.facts(node.child)
            if not child_facts.is_unique(c.cid for c in node.columns):
                return None
            assignments = tuple(
                (c, ColumnRef(c)) for c in node.child.output_columns
            )
            assignments += ((node.marker, TRUE),)
            return Project(node.child, assignments)
        return None
