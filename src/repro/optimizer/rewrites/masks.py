"""Aggregate-mask factoring.

The fused plans §V.B shows compute bucket predicates once in a
projection and let both the row filter and the aggregate masks
reference the resulting boolean columns::

    SELECT COUNT(*) FILTER(WHERE b1), AVG(…) FILTER(WHERE b1), …
    FROM (SELECT *, ss_quantity BETWEEN 1 AND 20 AS b1, …
          FROM store_sales
          WHERE ss_quantity BETWEEN 1 AND 20 OR …)

This pass produces that shape: when several aggregate masks of a
GroupBy share non-trivial conjunct factors, the distinct factors are
materialized as boolean columns in a projection and the masks become
cheap column references.  When the filter below the GroupBy (possibly
under a MarkDistinct chain) contains the same predicates — the OR that
filter fusion builds — the projection is pushed beneath it and the
filter reuses the factored columns too.  Without this, a fused GroupBy
carrying 15 masked aggregates re-evaluates the same BETWEEN predicates
15 times per row and loses the latency win the paper reports.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Expression,
    columns_in,
    conjuncts,
    make_and,
    normalize,
    transform,
)
from repro.algebra.operators import (
    AggregateAssignment,
    Filter,
    GroupBy,
    MarkDistinct,
    PlanNode,
    Project,
    Scan,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import RewriteRule


class FactorAggregateMasks(RewriteRule):
    name = "factor_aggregate_masks"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, GroupBy):
            return None
        # Which masks does each non-trivial conjunct appear in?
        signature: dict[Expression, set[int]] = {}
        term_order: list[Expression] = []
        for position, assignment in enumerate(node.aggregates):
            if assignment.mask == TRUE:
                continue
            for term in conjuncts(assignment.mask):
                if isinstance(term, ColumnRef):
                    continue
                if term not in signature:
                    signature[term] = set()
                    term_order.append(term)
                signature[term].add(position)
        if not signature:
            return None
        # Worth a projection only when factors are actually shared.
        if sum(len(s) for s in signature.values()) <= len(signature):
            return None

        # Conjuncts that always co-occur (same mask set) merge into one
        # boolean column — this reconstitutes whole bucket predicates
        # (one `b_i` per bucket, as in the paper's plan) so evaluation
        # keeps its short-circuit behaviour.
        groups: dict[frozenset, list[Expression]] = {}
        for term in term_order:
            groups.setdefault(frozenset(signature[term]), []).append(term)
        factor_columns: dict[Expression, Column] = {}
        term_to_factor: dict[Expression, Expression] = {}
        for members in groups.values():
            combined = make_and(members)
            column = ctx.allocator.fresh("mask_factor", DataType.BOOLEAN)
            factor_columns[combined] = column
            for term in members:
                term_to_factor[term] = combined
        by_normal = {normalize(term): col for term, col in factor_columns.items()}

        child = self._insert_projection(node.child, factor_columns, by_normal, ctx)

        lowered = []
        for assignment in node.aggregates:
            if assignment.mask == TRUE:
                lowered.append(assignment)
                continue
            terms: list[Expression] = []
            for term in conjuncts(assignment.mask):
                factor = term_to_factor.get(term)
                if factor is None:
                    terms.append(term)
                else:
                    ref = ColumnRef(factor_columns[factor])
                    if ref not in terms:
                        terms.append(ref)
            lowered.append(
                AggregateAssignment(
                    assignment.target,
                    assignment.func,
                    assignment.argument,
                    make_and(terms),
                    assignment.distinct,
                )
            )
        return GroupBy(child, node.keys, tuple(lowered))

    def _insert_projection(
        self,
        child: PlanNode,
        factor_columns: dict[Expression, Column],
        by_normal: dict[Expression, Column],
        ctx: OptimizerContext,
    ) -> PlanNode:
        """Place the factor projection, preferably *below* the row
        filter (through any MarkDistinct chain) so the filter reuses
        the factored predicates instead of re-evaluating them.  A
        disjunction of factors that predicate pushdown already moved
        into the scan is pulled back above the projection (unless it
        contributes to partition pruning)."""

        def project_over(base: PlanNode) -> Project:
            assignments = tuple(
                (c, ColumnRef(c)) for c in base.output_columns
            ) + tuple((col, term) for term, col in factor_columns.items())
            return Project(base, assignments)

        def swap_in(condition: Expression) -> tuple[Expression, bool]:
            replaced = [False]

            def swap(expr: Expression) -> Expression:
                column = by_normal.get(normalize(expr))
                if column is not None:
                    replaced[0] = True
                    return ColumnRef(column)
                return expr

            return transform(condition, swap), replaced[0]

        # Walk through a MarkDistinct chain looking for the filter/scan.
        chain: list[MarkDistinct] = []
        cursor = child
        while isinstance(cursor, MarkDistinct):
            chain.append(cursor)
            cursor = cursor.child

        def rebuild_chain(base: PlanNode) -> PlanNode:
            for mark in reversed(chain):
                base = MarkDistinct(base, mark.columns, mark.marker, mark.mask)
            return base

        if isinstance(cursor, Filter):
            available = set(cursor.child.output_columns)
            if all(columns_in(term) <= available for term in factor_columns):
                condition, changed = swap_in(cursor.condition)
                if changed:
                    return rebuild_chain(
                        Filter(project_over(cursor.child), condition)
                    )
        if isinstance(cursor, Scan) and cursor.predicate is not None:
            partition = None
            if ctx.catalog.has_table(cursor.table):
                partition = ctx.catalog.table(cursor.table).partition_column
            keep: list[Expression] = []
            lifted: list[Expression] = []
            for term in conjuncts(cursor.predicate):
                swapped, changed = swap_in(term)
                prunes = partition is not None and any(
                    cursor.source_of(c).lower() == partition.lower()
                    for c in columns_in(term)
                    if c in set(cursor.columns)
                )
                if changed and not prunes:
                    lifted.append(swapped)
                else:
                    keep.append(term)
            if lifted:
                stripped = cursor.with_predicate(
                    make_and(keep) if keep else None
                )
                return rebuild_chain(
                    Filter(project_over(stripped), make_and(lifted))
                )
        return project_over(child)
