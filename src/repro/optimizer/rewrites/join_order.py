"""Greedy join ordering.

The paper's §IV.E: "Athena performs join reordering, and in fact, the
specific order of inputs in a join … influences whether rules based on
query fusion can be applied. … we extend join-based rules so that they
operate before join reordering."  This pass is that reordering stage:
it runs *after* the fusion rules in both pipelines, so the fusion
patterns match on the canonical (author-written) order and execution
still benefits from a sensible join order.

Heuristic, matched to the executor's hash joins (left side streams,
right side builds a hash table): start the left-deep chain from the
largest estimated input, then repeatedly attach the smallest input that
is connected to the chain by an equality conjunct; disconnected inputs
(cross products) go last.
"""

from __future__ import annotations

from repro.algebra.expressions import columns_in
from repro.algebra.operators import PlanNode
from repro.optimizer.context import OptimizerContext
from repro.optimizer.join_graph import (
    JoinGraph,
    flatten_join_region,
    rebuild_join_region,
)
from repro.optimizer.rule import PlanPass


class GreedyJoinOrder(PlanPass):
    name = "greedy_join_order"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        graph = flatten_join_region(plan)
        if graph is None:
            children = plan.children
            if not children:
                return plan
            new_children = tuple(self.run(child, ctx) for child in children)
            if new_children != children:
                plan = plan.with_children(new_children)
            return plan

        graph.inputs = [self.run(node, ctx) for node in graph.inputs]
        for semi in graph.semis:
            semi.right = self.run(semi.right, ctx)
        if len(graph.inputs) >= 2:
            if ctx.cost_model is not None:
                # Cost-based selection (DESIGN.md §15): keep whichever
                # of {greedy order, original order} prices cheaper.
                # Both rebuilds share the input subtrees, so only the
                # join spines are priced anew.
                snapshot = graph.copy()
                graph.inputs = self._order(graph, ctx)
                candidate = rebuild_join_region(graph, ctx)
                original = rebuild_join_region(snapshot, ctx)
                if not ctx.choose(self.name, original, candidate):
                    return original
                return candidate
            graph.inputs = self._order(graph, ctx)
        return rebuild_join_region(graph, ctx)

    def _order(self, graph: JoinGraph, ctx: OptimizerContext) -> list[PlanNode]:
        graph.apply_substitution()
        sizes = {id(node): ctx.estimated_rows(node) for node in graph.inputs}
        column_owner: dict[int, int] = {}
        for node in graph.inputs:
            for column in node.output_columns:
                column_owner[column.cid] = id(node)

        # Adjacency between inputs through shared conjuncts.
        edges: dict[int, set[int]] = {id(n): set() for n in graph.inputs}
        for term in graph.conjuncts:
            owners = {
                column_owner[c.cid]
                for c in columns_in(term)
                if c.cid in column_owner
            }
            for a in owners:
                for b in owners:
                    if a != b:
                        edges[a].add(b)

        remaining = list(graph.inputs)
        remaining.sort(key=lambda n: (-sizes[id(n)],))
        chain = [remaining.pop(0)]
        connected = set(edges[id(chain[0])])
        while remaining:
            candidates = [n for n in remaining if id(n) in connected]
            if candidates:
                nxt = min(candidates, key=lambda n: sizes[id(n)])
            else:
                # No connected input: keep original relative order among
                # the disconnected remainder (stable cross products).
                nxt = remaining[0]
            remaining.remove(nxt)
            chain.append(nxt)
            connected |= edges[id(nxt)]
        return chain
