"""Cross-query computation reuse (plan-cache integration).

The pass runs last in the pipeline, over the fully optimized plan, so
cached subplans correspond to the shapes the engine would actually
execute.  Walking top-down it does two things per subplan:

* **Replace** — if the subplan's semantic fingerprint
  (:func:`~repro.algebra.fingerprint.plan_fingerprint`) is present in
  the session's :class:`~repro.engine.plan_cache.PlanCache` and still
  valid against the catalog's table versions, the subtree is replaced
  with a :class:`~repro.algebra.operators.CachedScan` leaf that replays
  the materialized vectors at execution time.  The hit is *pinned*
  until the session finishes executing the query, so populations later
  in the same query cannot evict an entry the plan depends on.

* **Populate** — otherwise, if the subplan looks worth caching (the
  query root, a spooled common subexpression, or a join/aggregation
  that passes the §IV.E cost heuristic) and its estimated result fits
  comfortably in the budget, it is wrapped in ``CachePopulate`` so the
  executor materializes and inserts it while streaming it through.
  Population slots are reserved *top-down before recursing* so the
  outermost promising subplan wins over its descendants, and at most
  ``config.cache_max_populate`` subplans are scheduled per query.

Subplans with free (correlated) column references or no stored-table
lineage (pure constant expressions — cheap to recompute, impossible to
version-invalidate) are never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.fingerprint import PlanFingerprint, plan_fingerprint
from repro.algebra.operators import (
    CachedScan,
    CachePopulate,
    GroupBy,
    PlanNode,
    Spool,
    Window,
)
from repro.algebra.types import encoded_bytes
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass

if TYPE_CHECKING:
    from repro.engine.plan_cache import PlanCache

#: A populated entry may use at most this fraction of the cache budget;
#: larger estimates are not worth the eviction churn they would cause.
_MAX_ENTRY_FRACTION = 0.5


@dataclass
class _ReuseState:
    """Per-query bookkeeping: remaining population slots and the
    fingerprints already scheduled (a query that repeats a subplan the
    spool pass did not merge must not populate it twice)."""

    budget: int
    scheduled: set[str] = field(default_factory=set)


class CrossQueryReuse(PlanPass):
    """Swap cached subplans for CachedScan; schedule CachePopulate."""

    name = "cross_query_reuse"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        cache = ctx.plan_cache
        if cache is None:
            return plan
        state = _ReuseState(budget=max(0, ctx.config.cache_max_populate))
        return self._visit(plan, ctx, cache, state, is_root=True)

    def _visit(
        self,
        node: PlanNode,
        ctx: OptimizerContext,
        cache: "PlanCache",
        state: _ReuseState,
        is_root: bool,
    ) -> PlanNode:
        if isinstance(node, (CachedScan, CachePopulate)):
            return node

        fp = plan_fingerprint(node)
        tokens: tuple[str, ...] = ()
        cacheable = not fp.has_free and bool(fp.tables)
        if cacheable:
            try:
                tokens = fp.output_tokens(node)
            except KeyError:
                # An output column the canonicalizer could not token —
                # treat as uncacheable rather than guess.
                cacheable = False

        if cacheable:
            entry = cache.lookup(fp.digest, ctx.catalog, pin=True)
            if entry is not None and all(t in entry.columns for t in tokens):
                ctx.record(self.name)
                return CachedScan(
                    fingerprint=fp.digest,
                    columns=node.output_columns,
                    column_tokens=tokens,
                    tables=tuple(sorted(fp.tables)),
                )

        # Reserve the population slot *before* recursing: the outermost
        # promising subplan should claim budget ahead of its children.
        populate = (
            cacheable
            and state.budget > 0
            and fp.digest not in state.scheduled
            and self._promising(node, ctx, is_root)
            and self._fits(node, ctx, cache)
        )
        if populate:
            state.budget -= 1
            state.scheduled.add(fp.digest)

        children = node.children
        new_children = tuple(
            self._visit(child, ctx, cache, state, is_root=False)
            for child in children
        )
        if any(a is not b for a, b in zip(children, new_children)):
            node = node.with_children(new_children)

        if populate:
            ctx.record(self.name + ".populate")
            tables = tuple(sorted(fp.tables))
            return CachePopulate(
                child=node,
                fingerprint=fp.digest,
                column_tokens=tokens,
                tables=tables,
                table_versions=tuple(
                    (t, ctx.catalog.table_version(t)) for t in tables
                ),
            )
        return node

    def _promising(
        self, node: PlanNode, ctx: OptimizerContext, is_root: bool
    ) -> bool:
        """Is materializing ``node`` likely to pay off later?

        The query root always is (whole-query replay is the headline
        win); a spooled subtree was already judged a duplicate worth
        materializing; aggregations/windows reuse well when they pass
        the same cost bar as fusion (§IV.E).  Everything else — bare
        scans, filters, joins mid-plan — is left alone: it would bloat
        the cache with fragments the root entry already subsumes.
        """
        if is_root:
            return True
        if isinstance(node, Spool):
            return True
        if isinstance(node, (GroupBy, Window)):
            if ctx.cost_model is not None:
                # Cost-based placement (DESIGN.md §15): materialize
                # only when recomputing the subplan prices higher than
                # a multiple of the bytes the entry would hold.
                return ctx.cost_model.populate_worthwhile(node)
            return ctx.worth_fusing(node)
        return False

    def _fits(
        self, node: PlanNode, ctx: OptimizerContext, cache: "PlanCache"
    ) -> bool:
        """Cheap size screen: estimated rows × encoded row width must
        stay under half the cache budget (the real check happens at
        insert time with actual bytes — this only avoids materializing
        obviously hopeless candidates)."""
        rows = max(ctx.estimated_rows(node), 0)
        width = sum(encoded_bytes(c.dtype) for c in node.output_columns) or 1.0
        return rows * width <= cache.budget_bytes * _MAX_ENTRY_FRACTION
