"""Distinct-aggregate lowering via MarkDistinct (§III.F).

Athena implements distinct aggregates with the ``MarkDistinct``
operator plus aggregate masks instead of self-joins.  This rule lowers
``agg(DISTINCT x) [FILTER (WHERE m)]`` inside a GroupBy into::

    GroupBy[agg(x) FILTER (marker AND m)]
      MarkDistinct[marker over (group keys, x, m?)]
        [Project computing x / m when not plain columns]
          child

Note one deliberate deviation from the paper's simplified §III.F
example, which writes ``MarkDistinct over {b}`` for a grouped
``count(distinct b)``: the distinct set must also include the grouping
keys (and the mask column when present), otherwise a value first seen
in one group would not be counted in another.  We include them.
"""

from __future__ import annotations

from repro.algebra.expressions import TRUE, ColumnRef, Expression
from repro.algebra.operators import (
    AggregateAssignment,
    GroupBy,
    MarkDistinct,
    PlanNode,
    Project,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import RewriteRule


class LowerDistinctAggregates(RewriteRule):
    name = "lower_distinct_aggregates"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, GroupBy):
            return None
        if not any(a.distinct for a in node.aggregates):
            return None

        child = node.child
        # Computed arguments / masks need materializing first.
        extra: list[tuple[Column, Expression]] = []

        def materialize(expr: Expression, hint: str) -> Column:
            if isinstance(expr, ColumnRef):
                return expr.column
            for column, existing in extra:
                if existing == expr:
                    return column
            column = ctx.allocator.fresh(hint, expr.dtype)
            extra.append((column, expr))
            return column

        lowered: list[AggregateAssignment] = []
        marks: list[tuple[tuple[Column, ...], Expression, Column]] = []
        mark_index: dict[tuple, Column] = {}
        for assignment in node.aggregates:
            if not assignment.distinct:
                lowered.append(assignment)
                continue
            if assignment.argument is None:
                return None  # count(DISTINCT *) is not valid SQL anyway
            arg_col = materialize(assignment.argument, "distinct_arg")
            distinct_set = tuple(node.keys) + (arg_col,)
            # The MarkDistinct carries the aggregate's mask natively
            # (§III.F extension): rows failing it are marked FALSE and
            # never consume a first occurrence, so the lowered
            # aggregate only needs to test the marker.
            key = (distinct_set, assignment.mask)
            marker = mark_index.get(key)
            if marker is None:
                marker = ctx.allocator.fresh("distinct_marker", DataType.BOOLEAN)
                mark_index[key] = marker
                marks.append((distinct_set, assignment.mask, marker))
            lowered.append(
                AggregateAssignment(
                    assignment.target,
                    assignment.func,
                    ColumnRef(arg_col),
                    ColumnRef(marker),
                    distinct=False,
                )
            )

        if extra:
            assignments = tuple(
                (c, ColumnRef(c)) for c in child.output_columns
            ) + tuple(extra)
            child = Project(child, assignments)
        for distinct_set, mask, marker in marks:
            child = MarkDistinct(child, distinct_set, marker, mask)
        return GroupBy(child, node.keys, tuple(lowered))
