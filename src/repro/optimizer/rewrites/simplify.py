"""Expression simplification and structural cleanup rules.

These are "orthogonal rules" in the paper's sense (§III.E): because
fusion produces plans out of standard operators, simplification over
masks and filters applies to fused results with no special handling.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    ColumnRef,
    Expression,
    make_and,
    substitute,
)
from repro.algebra.operators import (
    AggregateAssignment,
    Filter,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.simplify import simplify, simplify_filter
from repro.algebra.visitors import transform_up
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass, RewriteRule


class SimplifyExpressions(PlanPass):
    """Constant-fold and flatten every expression in the plan."""

    name = "simplify_expressions"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        def fix(node: PlanNode) -> PlanNode:
            if isinstance(node, Filter):
                condition = simplify_filter(node.condition)
                if condition != node.condition:
                    return Filter(node.child, condition)
                return node
            if isinstance(node, Project):
                assignments = tuple(
                    (target, simplify(expr)) for target, expr in node.assignments
                )
                if assignments != node.assignments:
                    return Project(node.child, assignments)
                return node
            if isinstance(node, Join) and node.condition is not None:
                condition = simplify(node.condition)
                if condition != node.condition:
                    return Join(node.kind, node.left, node.right, condition)
                return node
            if isinstance(node, GroupBy):
                aggregates = tuple(
                    AggregateAssignment(
                        a.target,
                        a.func,
                        None if a.argument is None else simplify(a.argument),
                        simplify(a.mask),
                        a.distinct,
                    )
                    for a in node.aggregates
                )
                if aggregates != node.aggregates:
                    return GroupBy(node.child, node.keys, aggregates)
                return node
            if isinstance(node, Scan) and node.predicate is not None:
                predicate = simplify_filter(node.predicate)
                if predicate == TRUE:
                    predicate = None
                if predicate != node.predicate:
                    return node.with_predicate(predicate)
                return node
            return node

        return transform_up(plan, fix)


class RemoveTrivialFilters(RewriteRule):
    """Filter(TRUE) disappears; adjacent filters merge; Filter(FALSE)
    becomes an empty Values relation."""

    name = "remove_trivial_filters"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, Filter):
            return None
        if node.condition == TRUE:
            return node.child
        if node.condition == FALSE:
            return _empty_relation(node)
        if isinstance(node.child, Filter):
            merged = make_and([node.child.condition, node.condition])
            return Filter(node.child.child, merged)
        return None


def _empty_relation(node: PlanNode) -> PlanNode:
    """An empty Values with the same output schema."""
    return Values(node.output_columns, ())


class MergeProjections(RewriteRule):
    """Project(Project(x)) composes into a single projection, and an
    identity projection (same columns, same order, plain refs)
    disappears."""

    name = "merge_projections"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, Project):
            return None
        child = node.child
        if isinstance(child, Project):
            inner = {target.cid: expr for target, expr in child.assignments}
            composed = tuple(
                (target, simplify(substitute(expr, inner)))
                for target, expr in node.assignments
            )
            return Project(child.child, composed)
        if node.output_columns == child.output_columns and all(
            isinstance(expr, ColumnRef) and expr.column == target
            for target, expr in node.assignments
        ):
            return child
        return None


def is_provably_empty(plan: PlanNode) -> bool:
    """True when the plan can be shown to produce no rows."""
    from repro.algebra.operators import (
        Join,
        JoinKind,
        Limit,
        MarkDistinct,
        Sort,
        Window,
    )

    if isinstance(plan, Values):
        return not plan.rows
    if isinstance(plan, (Filter, Project, Limit, Sort, MarkDistinct, Window)):
        return is_provably_empty(plan.children[0])
    if isinstance(plan, GroupBy):
        return bool(plan.keys) and is_provably_empty(plan.child)
    if isinstance(plan, Join):
        if plan.kind is JoinKind.LEFT:
            return is_provably_empty(plan.left)
        if plan.kind is JoinKind.ANTI:
            return is_provably_empty(plan.left)
        return is_provably_empty(plan.left) or is_provably_empty(plan.right)
    if isinstance(plan, UnionAll):
        return all(is_provably_empty(child) for child in plan.inputs)
    return False


class PruneUnionBranches(RewriteRule):
    """Drop UnionAll branches that are provably empty; a single
    surviving branch replaces the union with a projection."""

    name = "prune_union_branches"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, UnionAll):
            return None
        keep = [
            (child, branch)
            for child, branch in zip(node.inputs, node.input_columns)
            if not is_provably_empty(child)
        ]
        if len(keep) == len(node.inputs):
            return None
        if not keep:
            return Values(node.columns, ())
        if len(keep) == 1:
            child, branch = keep[0]
            assignments = tuple(
                (out, ColumnRef(src)) for out, src in zip(node.columns, branch)
            )
            return Project(child, assignments)
        return UnionAll(
            tuple(child for child, _ in keep),
            node.columns,
            tuple(branch for _, branch in keep),
        )
