"""Semi-join unification plumbing (the existing-engine rules §V.D
relies on).

Q95's "curious pattern" is two IN-subqueries probing the same column,
where one subquery's result subsumes the other.  The paper simplifies
it through an interplay of rules:

1. :class:`SemiJoinToDistinctJoin` — "we first transform the semi-joins
   into equivalent joins over a distinct on the right side".  Guarded
   by a heuristic: it only fires when at least two semi-joins in the
   same chain probe the *same* left column (otherwise the semi-join
   form is strictly better and conversion would be a pessimization).
2. :class:`DistinctPushdown` — "a rule that pushes a distinct operation
   below a join whenever the distinct and join columns agree".
3. The JoinOnKeys fusion rule (§IV.B) then fuses the duplicated
   distinct subqueries; with identical keyed GroupBys and no
   aggregates, fusion simply removes one.

Both rules here are classical and run in the baseline pipeline too.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef, Comparison, conjuncts
from repro.algebra.operators import (
    Filter,
    GroupBy,
    Join,
    JoinKind,
    PlanNode,
    Project,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import RewriteRule


def _semi_probe(join: Join) -> tuple[Column, Column] | None:
    """For a semi join with a single ``left_col = right_col`` condition,
    the (probe, right) column pair."""
    if join.kind is not JoinKind.SEMI or join.condition is None:
        return None
    terms = conjuncts(join.condition)
    if len(terms) != 1:
        return None
    term = terms[0]
    if not (isinstance(term, Comparison) and term.op == "="):
        return None
    left, right = term.left, term.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    left_cols = set(join.left.output_columns)
    right_cols = set(join.right.output_columns)
    if left.column in left_cols and right.column in right_cols:
        return left.column, right.column
    if right.column in left_cols and left.column in right_cols:
        return right.column, left.column
    return None


def _convert_semi(join: Join, probe: Column, right_col: Column) -> PlanNode:
    """SemiJoin(L, R, l=r)  →  Project[L cols](L ⨝ Distinct(π_r R))."""
    projected = Project(join.right, ((right_col, ColumnRef(right_col)),))
    distinct = GroupBy(projected, (right_col,), ())
    inner = Join(
        JoinKind.INNER,
        join.left,
        distinct,
        Comparison("=", ColumnRef(probe), ColumnRef(right_col)),
    )
    assignments = tuple((c, ColumnRef(c)) for c in join.left.output_columns)
    return Project(inner, assignments)


class SemiJoinToDistinctJoin(RewriteRule):
    """Convert chains of semi-joins probing the same column into joins
    over distincts, enabling distinct pushdown + fusion."""

    name = "semijoin_to_distinct_join"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, Join) or node.kind is not JoinKind.SEMI:
            return None
        outer = _semi_probe(node)
        if outer is None:
            return None
        probe = outer[0]
        # Look down the left chain for another semi join on the same probe.
        found = False
        cursor: PlanNode = node.left
        while True:
            if isinstance(cursor, Join) and cursor.kind is JoinKind.SEMI:
                inner = _semi_probe(cursor)
                if inner is not None and inner[0] == probe:
                    found = True
                    break
                cursor = cursor.left
                continue
            if isinstance(cursor, Filter):
                cursor = cursor.child
                continue
            break
        if not found:
            return None

        def convert_chain(plan: PlanNode) -> PlanNode:
            if isinstance(plan, Join) and plan.kind is JoinKind.SEMI:
                pair = _semi_probe(plan)
                rebuilt_left = convert_chain(plan.left)
                rebuilt = Join(plan.kind, rebuilt_left, plan.right, plan.condition)
                if pair is not None and pair[0] == probe:
                    return _convert_semi(rebuilt, pair[0], pair[1])
                return rebuilt
            if isinstance(plan, Filter):
                return Filter(convert_chain(plan.child), plan.condition)
            return plan

        return convert_chain(node)


class DistinctPushdown(RewriteRule):
    """Distinct of a join column over an equi-join becomes a join of
    per-side distincts::

        Distinct[k](A ⨝[a=k] B)  →  π[k](Distinct[a](π_a A) ⨝ Distinct[k](π_k B))

    Valid because each side keyed by its join column matches at most
    one row on the other side.
    """

    name = "distinct_pushdown"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, GroupBy) or node.aggregates or len(node.keys) != 1:
            return None
        key = node.keys[0]
        child = node.child
        # See through a single-column renaming projection.
        rename: Column | None = None
        if isinstance(child, Project):
            if len(child.assignments) != 1:
                return None
            target, expr = child.assignments[0]
            if target != key or not isinstance(expr, ColumnRef):
                return None
            rename = key
            key = expr.column
            child = child.child
        if not (isinstance(child, Join) and child.kind is JoinKind.INNER):
            return None
        terms = conjuncts(child.condition)
        if len(terms) != 1:
            return None
        term = terms[0]
        if not (isinstance(term, Comparison) and term.op == "="):
            return None
        if not (isinstance(term.left, ColumnRef) and isinstance(term.right, ColumnRef)):
            return None
        a, b = term.left.column, term.right.column
        left_cols = set(child.left.output_columns)
        right_cols = set(child.right.output_columns)
        if a in right_cols and b in left_cols:
            a, b = b, a
        if not (a in left_cols and b in right_cols):
            return None
        if key not in (a, b):
            return None

        left_d = GroupBy(Project(child.left, ((a, ColumnRef(a)),)), (a,), ())
        right_d = GroupBy(Project(child.right, ((b, ColumnRef(b)),)), (b,), ())
        joined = Join(
            JoinKind.INNER, left_d, right_d, Comparison("=", ColumnRef(a), ColumnRef(b))
        )
        output = rename if rename is not None else key
        ctx.record(self.name)
        return Project(joined, ((output, ColumnRef(key)),))
