"""Rule engine.

Two rule shapes:

* :class:`RewriteRule` — matches a single operator; the engine applies
  it bottom-up across the tree, iterating to a (bounded) fixpoint;
* :class:`PlanPass` — a whole-plan transformation (pushdown, pruning).

A pipeline is an ordered list of passes; :func:`run_pipeline` executes
them and returns the final plan.
"""

from __future__ import annotations

import abc

from repro.algebra.analysis import FactAnalyzer, fact_conflicts
from repro.algebra.operators import PlanNode
from repro.algebra.validator import validate_plan
from repro.algebra.visitors import transform_up
from repro.errors import OptimizerError, PlanError
from repro.optimizer.context import OptimizerContext


class PlanPass(abc.ABC):
    """A whole-plan transformation."""

    name: str = "pass"

    @abc.abstractmethod
    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        """Return the rewritten plan (may be the input unchanged)."""


class RewriteRule(PlanPass):
    """A node-local rewrite applied bottom-up to fixpoint."""

    name: str = "rule"
    #: When True and the context carries a cost model (DESIGN.md §15),
    #: each successful rewrite is priced against the node it replaces
    #: and kept only if it costs no worse.  Declining returns the
    #: original node, so the fixpoint loop still terminates.
    cost_gated: bool = False

    @abc.abstractmethod
    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        """Rewrite one node, or None when the rule does not apply."""

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        for _ in range(ctx.config.max_iterations):
            changed = False

            def apply(node: PlanNode) -> PlanNode:
                nonlocal changed
                rewritten = self.rewrite(node, ctx)
                if rewritten is None:
                    return node
                if self.cost_gated and not ctx.choose(self.name, node, rewritten):
                    return node
                changed = True
                ctx.record(self.name)
                return rewritten

            plan = transform_up(plan, apply)
            if not changed:
                return plan
        return plan


class Pipeline:
    """An ordered sequence of passes."""

    def __init__(self, passes: list[PlanPass]):
        self.passes = passes

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        validate = ctx.config.validate_plans
        analyzer = FactAnalyzer(ctx.catalog) if validate else None
        if validate:
            _checked(plan, ctx, "pipeline input")
            facts = analyzer.facts(plan)
        for plan_pass in self.passes:
            before = plan
            plan = plan_pass.run(plan, ctx)
            if plan is None:  # defensive: a buggy pass returned nothing
                raise OptimizerError(f"pass {plan_pass.name} returned None")
            if validate and plan is not before:
                _checked(plan, ctx, plan_pass.name)
                # Fact-drift check: re-derive column facts and fail
                # with per-rule blame if the rewritten plan's facts
                # *contradict* the input's — precision may move, but
                # two sound analyses of equivalent plans can never
                # definitely disagree (see fact_conflicts).
                after = analyzer.facts(plan)
                conflicts = fact_conflicts(facts, after, plan.output_columns)
                if conflicts:
                    raise OptimizerError(
                        f"rule {plan_pass.name!r} produced a plan whose "
                        f"derived facts contradict its input: "
                        + "; ".join(conflicts)
                    )
                facts = after
        return plan


def _checked(plan: PlanNode, ctx: OptimizerContext, origin: str) -> None:
    """Validate ``plan``, converting a violation into an OptimizerError
    that names the pass that produced the invalid tree."""
    try:
        validate_plan(plan, ctx.catalog)
    except PlanError as exc:
        raise OptimizerError(f"rule {origin!r} produced an invalid plan: {exc}") from exc


def run_pipeline(plan: PlanNode, passes: list[PlanPass], ctx: OptimizerContext) -> PlanNode:
    return Pipeline(passes).run(plan, ctx)
