"""Rule engine.

Two rule shapes:

* :class:`RewriteRule` — matches a single operator; the engine applies
  it bottom-up across the tree, iterating to a (bounded) fixpoint;
* :class:`PlanPass` — a whole-plan transformation (pushdown, pruning).

A pipeline is an ordered list of passes; :func:`run_pipeline` executes
them and returns the final plan.
"""

from __future__ import annotations

import abc

from repro.algebra.operators import PlanNode
from repro.algebra.visitors import transform_up
from repro.errors import OptimizerError
from repro.optimizer.context import OptimizerContext


class PlanPass(abc.ABC):
    """A whole-plan transformation."""

    name: str = "pass"

    @abc.abstractmethod
    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        """Return the rewritten plan (may be the input unchanged)."""


class RewriteRule(PlanPass):
    """A node-local rewrite applied bottom-up to fixpoint."""

    name: str = "rule"

    @abc.abstractmethod
    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        """Rewrite one node, or None when the rule does not apply."""

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        for _ in range(ctx.config.max_iterations):
            changed = False

            def apply(node: PlanNode) -> PlanNode:
                nonlocal changed
                rewritten = self.rewrite(node, ctx)
                if rewritten is None:
                    return node
                changed = True
                ctx.record(self.name)
                return rewritten

            plan = transform_up(plan, apply)
            if not changed:
                return plan
        return plan


class Pipeline:
    """An ordered sequence of passes."""

    def __init__(self, passes: list[PlanPass]):
        self.passes = passes

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        for plan_pass in self.passes:
            before = plan
            plan = plan_pass.run(plan, ctx)
            if plan is None:  # defensive: a buggy pass returned nothing
                raise OptimizerError(f"pass {plan_pass.name} returned None")
            if plan is not before and plan != before:
                pass  # changed; nothing extra to do, kept for clarity
        return plan


def run_pipeline(plan: PlanNode, passes: list[PlanPass], ctx: OptimizerContext) -> PlanNode:
    return Pipeline(passes).run(plan, ctx)
