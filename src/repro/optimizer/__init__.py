"""Rule-based optimizer: classical rewrites plus the paper's fusion rules."""

from repro.optimizer.config import BASELINE, FUSION, OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.pipeline import build_pipeline, optimize
from repro.optimizer.rule import PlanPass, Pipeline, RewriteRule

__all__ = [
    "OptimizerConfig",
    "BASELINE",
    "FUSION",
    "OptimizerContext",
    "optimize",
    "build_pipeline",
    "PlanPass",
    "RewriteRule",
    "Pipeline",
]
