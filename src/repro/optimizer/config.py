"""Optimizer configuration.

``OptimizerConfig`` selects which rule groups run, mirroring the
paper's experimental setup: the *baseline* is the engine's standard
rule set ("Athena's default production configuration"), and the
*instrumented* compiler additionally enables the fusion-based rules of
§IV.  Per-rule flags support the ablation benchmarks.

``fusion_min_rows`` is the §IV.E cost heuristic: fusion rewrites fire
only when the common subexpression is estimated expensive — it
contains a join/aggregation or scans at least this many rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizerConfig:
    """Feature switches and heuristics for one optimization pipeline."""

    #: Master switch for the paper's fusion-based rules (§IV).
    enable_fusion: bool = True
    #: §IV.A GroupByJoinToWindow.
    enable_groupby_join_to_window: bool = True
    #: §IV.B JoinOnKeys (including the scalar-aggregate special case).
    enable_join_on_keys: bool = True
    #: §IV.C UnionAllOnJoin.
    enable_union_all_on_join: bool = True
    #: §IV.D UnionAll.
    enable_union_all: bool = True
    #: Cost heuristic (§IV.E): minimum estimated input rows of the
    #: common expression for a fusion rewrite to be worthwhile.  The
    #: default of 1 fires on anything that scans stored data but not on
    #: constant-table expressions; ablation benches sweep this knob.
    fusion_min_rows: int = 1
    #: Upper bound on rule-engine fixpoint iterations.
    max_iterations: int = 10
    #: Spool duplicated common subexpressions that fusion did not
    #: eliminate (the paper's stated roadmap fallback).  Off by default:
    #: the paper's engine does not have it yet, and the ablation bench
    #: compares fusion vs spooling explicitly.
    enable_spooling: bool = False
    #: Execution backend: ``"batch"`` streams ~``batch_rows``-row
    #: column blocks through vectorized operators (the default — it
    #: amortizes the interpreter's per-row overhead); ``"row"`` is the
    #: original tuple-at-a-time streaming executor; ``"compiled"``
    #: fuses each scan→filter→project→(aggregate/limit) pipeline into
    #: one generated kernel (repro.engine.compiled, DESIGN.md §11).
    #: All three produce identical results and scan/spool metrics
    #: (tests/test_engine_ab.py); compiled with NumPy vectors carries
    #: the usual float summation-order latitude.
    engine: str = "batch"
    #: Rows per block for the batch and compiled engines.
    batch_rows: int = 1024
    #: Vector representation for ``engine="compiled"``: ``"numpy"``
    #: backs eligible column blocks with ndarrays + validity masks
    #: (silently degrading to Python lists when NumPy is missing or
    #: ``REPRO_DISABLE_NUMPY`` is set); ``"python"`` forces the pure
    #: list kernels, which are bit-identical to the batch engine.
    vectors: str = "numpy"
    #: Record a per-operator/per-pipeline wall-time breakdown into
    #: ``QueryMetrics.operator_times`` (the CLI's ``--profile``).
    profile: bool = False
    #: Cross-query computation reuse: fingerprint subplans and replace
    #: any whose result is already in the session's plan cache with a
    #: CachedScan, populating promising subplans on first execution
    #: (repro.engine.plan_cache).  Off by default — reuse across
    #: queries only pays off for sessions that repeat work, which is
    #: what the cache benchmarks measure.
    enable_plan_cache: bool = False
    #: Byte budget of the plan cache (LRU evicts beyond it).
    cache_budget_mb: float = 64.0
    #: Maximum subplans scheduled for cache population per query —
    #: bounds the materialization overhead of a cold first run.
    cache_max_populate: int = 4
    #: Fault tolerance (see repro.storage.faults and DESIGN.md §9).
    #: Fraction of chunk-read sites that fail transiently; > 0 makes
    #: the session install a deterministic FaultInjector on its store.
    fault_rate: float = 0.0
    #: Seed for the fault injector and retry jitter.
    fault_seed: int = 7
    #: Bounded retries of transient read faults (0 = surface the first
    #: fault as a TransientReadError).
    max_retries: int = 3
    #: Base delay of the exponential retry backoff.
    retry_base_delay_ms: float = 1.0
    #: Per-query deadline, enforced cooperatively at block boundaries
    #: (None = no deadline; 0 times out at the first boundary).
    timeout_ms: float | None = None
    #: Row budget for any single materialized intermediate (spools,
    #: plan-cache populations); None = unlimited.
    max_spool_rows: int | None = None
    #: Budget for total resident operator state in rows — the memory
    #: stand-in covering join builds, aggregation hash tables, sorts.
    max_state_rows: int | None = None
    #: Verify chunk content checksums on every read (and plan-cache
    #: entry checksums on every replay).
    verify_checksums: bool = True
    #: Strict block mode for tests/CI: "copy" hands out copied vectors,
    #: "verify" re-checks all stored chunks after each query (None =
    #: zero-copy fast path, no post-query sweep).
    strict_blocks: str | None = None
    #: Run the plan invariant validator
    #: (:func:`repro.algebra.validator.validate_plan`) on the pipeline
    #: input and after every pass that changes the plan, re-derive the
    #: abstract-interpretation column facts
    #: (:mod:`repro.algebra.analysis`) after each change and fail on a
    #: fact contradiction, audit every synthesized compiled-engine
    #: kernel (:mod:`repro.engine.kernel_audit`), and check the §III
    #: fusion contract after every successful ``Fuse``.  Errors name
    #: the offending rule.  Off by default (it costs a full tree walk
    #: plus a fact derivation per pass); the differential fuzzer and CI
    #: turn it on.
    validate_plans: bool = False
    #: Fact-driven simplification (FactSimplify): fold filter/join
    #: conditions that catalog-derived column facts decide, and
    #: collapse DISTINCT-shaped operators over provably-unique inputs
    #: to projections.  On by default — it only fires on proofs.
    enable_fact_simplify: bool = True
    #: Scale-out execution inside one process (DESIGN.md §13): with
    #: ``workers > 1`` the optimizer appends the ParallelPlan pass,
    #: which cuts partition-parallel subtrees out of the optimized plan
    #: with Exchange/Repartition markers, and the session dispatches
    #: those fragments to a persistent multiprocessing worker pool.
    #: ``workers == 1`` (the default) never inserts an Exchange and is
    #: byte-for-byte the serial engine.
    workers: int = 1
    #: Shard count of the session's plan cache.  With > 1 the session
    #: builds a :class:`~repro.engine.plan_cache.ShardedPlanCache`
    #: (fingerprints routed to per-shard locks, budget split evenly) so
    #: concurrent populate/replay is safe per shard; 1 keeps the plain
    #: single-structure cache with its exact global budget.
    cache_shards: int = 1
    #: Simulated object-store read latency, milliseconds per partition
    #: read (the S3 GET regime Athena's scans live in).  Parallel
    #: workers overlap these waits, which is the latency-hiding effect
    #: ``benchmarks/bench_parallel.py`` measures; 0 disables the sleep.
    io_latency_ms: float = 0.0
    #: Per-fragment fault domain: how many times a failed fragment is
    #: resubmitted (on a different worker when possible) before the
    #: query fails.
    fragment_retries: int = 2
    #: Stall detection: a dispatched fragment with no result after this
    #: many milliseconds is speculatively resubmitted to another worker
    #: (first result wins).  None disables speculation.
    fragment_timeout_ms: float | None = None
    #: Cost-based rewrite selection (ROADMAP item 3, DESIGN.md §15):
    #: price fusion candidates, the semi-join conversion block, join
    #: order, and cache-populate placement with the CostModel (bytes
    #: scanned + rows processed over memoized cardinality estimates)
    #: and fire only the alternatives that price no worse, instead of
    #: relying on the §IV.E heuristics alone.  Plan choice changes;
    #: results never do — the fuzzer's costed axis enforces it.
    cost_based: bool = False
    #: When True, distinct aggregates are lowered to MarkDistinct
    #: *before* the fusion rules run, exercising §III.F's MarkDistinct
    #: fusion on e.g. TPC-DS Q28.  The default lowers after fusion,
    #: which produces the same results with cheaper plans (fusion then
    #: merges the distinct flags directly); the ablation benchmark
    #: compares both orders.
    lower_distinct_before_fusion: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ("row", "batch", "compiled"):
            raise ValueError(
                f"unknown engine {self.engine!r}: expected 'row', 'batch' "
                "or 'compiled'"
            )
        if self.vectors not in ("python", "numpy"):
            raise ValueError(
                f"unknown vectors {self.vectors!r}: expected 'python' or 'numpy'"
            )
        if self.batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        if self.cache_budget_mb <= 0:
            raise ValueError("cache_budget_mb must be positive")
        if self.cache_max_populate < 0:
            raise ValueError("cache_max_populate must be non-negative")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_base_delay_ms < 0:
            raise ValueError("retry_base_delay_ms must be non-negative")
        if self.timeout_ms is not None and self.timeout_ms < 0:
            raise ValueError("timeout_ms must be non-negative")
        if self.max_spool_rows is not None and self.max_spool_rows <= 0:
            raise ValueError("max_spool_rows must be positive")
        if self.max_state_rows is not None and self.max_state_rows <= 0:
            raise ValueError("max_state_rows must be positive")
        if self.strict_blocks not in (None, "copy", "verify"):
            raise ValueError(
                f"strict_blocks must be None, 'copy' or 'verify', "
                f"got {self.strict_blocks!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.cache_shards < 1:
            raise ValueError("cache_shards must be at least 1")
        if self.io_latency_ms < 0:
            raise ValueError("io_latency_ms must be non-negative")
        if self.fragment_retries < 0:
            raise ValueError("fragment_retries must be non-negative")
        if self.fragment_timeout_ms is not None and self.fragment_timeout_ms <= 0:
            raise ValueError("fragment_timeout_ms must be positive")

    def fusion_rules_enabled(self) -> bool:
        return self.enable_fusion and (
            self.enable_groupby_join_to_window
            or self.enable_join_on_keys
            or self.enable_union_all_on_join
            or self.enable_union_all
        )

    def without_fusion(self) -> "OptimizerConfig":
        """The baseline configuration: same classical rules, no §IV."""
        return replace(self, enable_fusion=False)


#: The paper's baseline: production rules without the new optimizations.
BASELINE = OptimizerConfig(enable_fusion=False)

#: The instrumented compiler: all fusion rules on.
FUSION = OptimizerConfig(enable_fusion=True)
