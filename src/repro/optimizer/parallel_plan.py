"""Fragment cutting: mark partition-parallel subtrees with Exchange.

The last optimizer pass when ``OptimizerConfig.workers > 1``.  It walks
the optimized plan looking for *partitionable pipelines* — maximal
Filter/Project chains over a single :class:`Scan` of a table stored in
at least two partitions — and wraps them in the placement operators the
fragment scheduler (:mod:`repro.engine.parallel`) consumes:

* keyed GroupBy over a pipeline::

      GroupBy(pipe, keys)  →  Exchange(GroupBy(Repartition(pipe, keys)))

  the scheduler scans the pipeline morsel-wise, hash-routes rows on the
  grouping keys so each bucket holds *complete* groups, aggregates each
  bucket on a worker, and merges bucket outputs back into serial order;

* scalar GroupBy over a pipeline::

      GroupBy(pipe, ())  →  GroupBy(Exchange(pipe))

  the scan parallelizes, the aggregation itself runs serially in the
  coordinator over the gathered rows — deliberately, so float
  accumulation order (and thus every output byte) matches workers=1;

* equi join with both sides pipelines::

      Join(l, r, cond)  →  Exchange(Join(Repartition(l, lk),
                                         Repartition(r, rk), cond))

  for INNER/LEFT/SEMI/ANTI joins with at least one bare-column equi
  conjunct; both sides hash-route on the equi keys so each bucket joins
  independently (non-equi conjuncts stay in the in-bucket condition);

* any other pipeline::

      pipe  →  Exchange(pipe)

  plain scatter/gather — morsels run the pipeline over disjoint
  partition windows and the gather re-concatenates in morsel order.

Exchange and Repartition are bag-identity, so a plan carrying them
still means exactly the same thing executed serially; every engine
treats them as pass-throughs.  The pass never nests Exchanges (wrapped
subtrees contain only Scan/Filter/Project by construction) and it
skips:

* subtrees demanded *lazily* by an early-terminating ancestor
  (Limit/EnforceSingleRow with only streaming operators in between) —
  parallel execution would gather everything and break the exact
  ``bytes_scanned`` equivalence with serial execution;
* ScalarApply entirely (its subquery re-executes per input row);
* CachedScan/Values leaves (already materialized) and CROSS joins.
"""

from __future__ import annotations

from itertools import count

from repro.algebra.expressions import ColumnRef, Comparison, conjuncts
from repro.algebra.operators import (
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Window,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import PlanPass

#: Tables with fewer stored partitions than this are left serial — a
#: single morsel would only add dispatch overhead.
MIN_PARTITIONS = 2

#: Joins the shuffle pattern supports.  CROSS has no keys to route on;
#: FULL does not exist in this algebra.
_SHUFFLE_JOIN_KINDS = (JoinKind.INNER, JoinKind.LEFT, JoinKind.SEMI, JoinKind.ANTI)


def pipeline_scan(node: PlanNode) -> Scan | None:
    """The Scan under a pure Filter/Project chain, or None."""
    while isinstance(node, (Filter, Project)):
        node = node.child
    return node if isinstance(node, Scan) else None


class ParallelPlan(PlanPass):
    """Cut the plan into partition-parallel fragments (DESIGN.md §13)."""

    name = "ParallelPlan"

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        ids = count(1)
        counts = ctx.partition_counts
        changed = False

        def partitionable(node: PlanNode) -> bool:
            scan = pipeline_scan(node)
            if scan is None:
                return False
            if counts is None:
                # Bare optimize() call without a store (tests): assume
                # stored tables are partitioned; the scheduler degrades
                # a 1-partition table to a single morsel harmlessly.
                return True
            return counts.get(scan.table.lower(), 1) >= MIN_PARTITIONS

        def mark(node: PlanNode) -> PlanNode:
            nonlocal changed
            changed = True
            return Exchange(node, next(ids))

        def visit(node: PlanNode, bounded: bool) -> PlanNode:
            # -- shuffle / gather patterns ------------------------------
            if isinstance(node, GroupBy) and partitionable(node.child):
                # GroupBy consumes its whole input regardless of what is
                # above it, so these are safe even under a Limit.
                if node.is_scalar:
                    return node.with_children((mark(node.child),))
                inner = node.with_children(
                    (Repartition(node.child, node.keys, next(ids)),)
                )
                return mark(inner)
            if (
                isinstance(node, Join)
                and not bounded
                and node.kind in _SHUFFLE_JOIN_KINDS
                and partitionable(node.left)
                and partitionable(node.right)
            ):
                keys = _equi_columns(node)
                if keys is not None:
                    lkeys, rkeys = keys
                    inner = node.with_children(
                        (
                            Repartition(node.left, lkeys, next(ids)),
                            Repartition(node.right, rkeys, next(ids)),
                        )
                    )
                    return mark(inner)
            if not bounded and partitionable(node):
                return mark(node)
            # -- recursion ----------------------------------------------
            if isinstance(node, ScalarApply):
                return node  # subquery re-executes per row: keep serial
            kids = node.children
            if not kids:
                return node
            new_kids = tuple(
                visit(child, _child_bounded(node, i, bounded))
                for i, child in enumerate(kids)
            )
            if all(a is b for a, b in zip(new_kids, kids)):
                return node
            return node.with_children(new_kids)

        result = visit(plan, False)
        if changed:
            ctx.record(self.name)
        return result


def _child_bounded(node: PlanNode, index: int, bounded: bool) -> bool:
    """Is child ``index`` demanded lazily by an early-terminating
    ancestor?  True means parallel execution could scan more than the
    serial engine would, so the child must stay serial."""
    if isinstance(node, (Limit, EnforceSingleRow)):
        return True
    if isinstance(node, (Sort, GroupBy, Window, Spool)):
        # Blocking: the operator drains its input fully before emitting
        # a single row, so demand from above cannot be partial.
        return False
    if isinstance(node, Join):
        if node.kind is JoinKind.CROSS:
            # Left streams, right is materialized.
            return bounded if index == 0 else False
        # Hash join: probe (left) streams, build (right) materializes.
        return bounded if index == 0 else False
    # Streaming operators (Filter/Project/UnionAll/MarkDistinct/
    # CachePopulate/Exchange...) propagate demand unchanged.
    return bounded


def _equi_columns(
    join: Join,
) -> tuple[tuple[Column, ...], tuple[Column, ...]] | None:
    """Bare-column equi-key pairs of ``join``, side-normalized.

    Returns ``(left_keys, right_keys)`` or None when no conjunct is a
    plain ``left_col = right_col`` comparison.  Expression-valued equi
    conjuncts are left to the in-bucket join: Repartition keys must be
    child output columns, so only bare columns can route the shuffle.
    """
    left_cols = {c.cid: c for c in join.left.output_columns}
    right_cols = {c.cid: c for c in join.right.output_columns}
    lkeys: list[Column] = []
    rkeys: list[Column] = []
    for term in conjuncts(join.condition):
        if not (isinstance(term, Comparison) and term.op == "="):
            continue
        if not (
            isinstance(term.left, ColumnRef) and isinstance(term.right, ColumnRef)
        ):
            continue
        a, b = term.left.column, term.right.column
        if a.cid in left_cols and b.cid in right_cols:
            lkeys.append(a)
            rkeys.append(b)
        elif b.cid in left_cols and a.cid in right_cols:
            lkeys.append(b)
            rkeys.append(a)
    if not lkeys:
        return None
    return tuple(lkeys), tuple(rkeys)
