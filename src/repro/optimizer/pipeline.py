"""Optimization pipelines.

:func:`build_pipeline` assembles the pass list for a configuration.
The *baseline* pipeline is the classical rule set (what the paper calls
"Athena's default production configuration"); enabling fusion splices
the §IV rules in at the positions the paper describes:

* fusion's join rules run over flattened n-ary joins *before* any join
  restructuring (§IV.E);
* UnionAllOnJoin runs before the generic UnionAll rule (it produces
  strictly better plans for the join-shaped case and the generic rule
  would not match the differing-table branches anyway);
* the semi-join → distinct-join conversion and distinct pushdown (the
  §V.D enablers) are classical rules present in both pipelines; the
  fusion pipeline's JoinOnKeys then removes the duplicated distinct;
* cleanup, pushdown, and pruning re-run after fusion so compensating
  filters reach the scans and dead columns disappear.
"""

from __future__ import annotations

from repro.algebra.operators import PlanNode
from repro.catalog.catalog import Catalog
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.context import OptimizerContext
from repro.optimizer.cost import CostGatedGroup
from repro.optimizer.parallel_plan import ParallelPlan
from repro.optimizer.fusion_rules import (
    GroupByJoinToWindow,
    JoinOnKeys,
    UnionAllFusion,
    UnionAllOnJoin,
)
from repro.optimizer.rewrites import (
    CrossQueryReuse,
    DecorrelateScalarAggregates,
    DistinctPushdown,
    FactorAggregateMasks,
    FactSimplify,
    GreedyJoinOrder,
    LowerDistinctAggregates,
    MergeProjections,
    PredicatePushdown,
    ProjectionPruning,
    PruneUnionBranches,
    RemoveScalarSubqueries,
    RemoveTrivialFilters,
    SemiJoinToDistinctJoin,
    SimplifyExpressions,
    SpoolDuplicateSubtrees,
)
from repro.optimizer.rule import PlanPass, run_pipeline


def build_pipeline(config: OptimizerConfig) -> list[PlanPass]:
    """The ordered pass list for ``config``."""
    cleanup: list[PlanPass] = [
        SimplifyExpressions(),
        RemoveTrivialFilters(),
        MergeProjections(),
        PruneUnionBranches(),
    ]
    passes: list[PlanPass] = [
        SimplifyExpressions(),
        RemoveScalarSubqueries(),
        DecorrelateScalarAggregates(),
        *cleanup,
        PredicatePushdown(),
        ProjectionPruning(),
    ]
    if config.enable_fact_simplify:
        # Derived-fact folding runs after pushdown so predicates sit
        # next to the scans whose statistics decide them.
        passes.append(FactSimplify())
    if config.lower_distinct_before_fusion:
        passes.append(LowerDistinctAggregates())
    if config.enable_fusion and config.enable_union_all_on_join:
        passes.append(UnionAllOnJoin())
    if config.enable_fusion and config.enable_union_all:
        passes.append(UnionAllFusion())
    window_rule = config.enable_fusion and config.enable_groupby_join_to_window
    keys_rule = config.enable_fusion and config.enable_join_on_keys
    if config.cost_based:
        # Cost mode (DESIGN.md §15): the semi-join → distinct-join
        # conversion is an *enabler* — locally a pessimization whose
        # payoff is the JoinOnKeys fusion it unlocks — so it is priced
        # as one group with the fusion rules behind it.  The fusion
        # rules then re-run outside the group (idempotent when the
        # group already fused) so a declined conversion does not starve
        # independent fusion opportunities, and the cleanups re-run so
        # a decline does not lose them.
        group: list[PlanPass] = [
            SemiJoinToDistinctJoin(),
            MergeProjections(),
            DistinctPushdown(),
        ]
        if window_rule:
            group.append(GroupByJoinToWindow())
        if keys_rule:
            group.append(JoinOnKeys())
        passes.append(CostGatedGroup("semijoin_distinct_group", group))
        passes.append(MergeProjections())
        passes.append(DistinctPushdown())
    else:
        passes.append(SemiJoinToDistinctJoin())
        passes.append(MergeProjections())
        passes.append(DistinctPushdown())
    if window_rule:
        passes.append(GroupByJoinToWindow())
    if keys_rule:
        passes.append(JoinOnKeys())
    passes.extend(
        [
            FactorAggregateMasks(),
            LowerDistinctAggregates(),
            # §IV.E: join reordering runs AFTER the fusion rules, which
            # matched on the canonical author-written join order.
            GreedyJoinOrder(),
            PredicatePushdown(),
            *cleanup,
            ProjectionPruning(),
            SimplifyExpressions(),
        ]
    )
    if config.enable_fact_simplify:
        # Second round over the final shape: fusion compensators and
        # join-key rewrites expose new always-true/redundant-DISTINCT
        # opportunities.
        passes.append(FactSimplify())
        passes.append(RemoveTrivialFilters())
        passes.append(ProjectionPruning())
    if config.enable_spooling:
        # The roadmap fallback: materialize duplicates fusion left behind.
        passes.append(SpoolDuplicateSubtrees())
    if config.enable_plan_cache:
        # Cross-query reuse runs over the final plan shape (after
        # spooling, so spooled common subexpressions are populate
        # candidates too).
        passes.append(CrossQueryReuse())
    if config.workers > 1:
        # Fragment cutting runs last, over the final serial plan shape:
        # Exchange/Repartition are placement markers every earlier rule
        # would have to look through, and fingerprints ignore them so
        # parallel plans share cache entries with serial ones.
        passes.append(ParallelPlan())
    return passes


def optimize(
    plan: PlanNode,
    catalog: Catalog,
    config: OptimizerConfig | None = None,
    plan_cache=None,
    partition_counts=None,
) -> tuple[PlanNode, OptimizerContext]:
    """Optimize ``plan`` under ``config`` (default: fusion enabled).

    ``plan_cache`` is the session's cross-query result cache; it is
    only consulted when ``config.enable_plan_cache`` is set.
    ``partition_counts`` maps table names to stored partition counts
    for the ParallelPlan pass (None = assume partitioned).

    Returns the optimized plan and the context (whose ``fired`` list
    records which rules changed the plan).
    """
    config = config if config is not None else OptimizerConfig()
    ctx = OptimizerContext(
        catalog, config, plan_cache=plan_cache, partition_counts=partition_counts
    )
    optimized = run_pipeline(plan, build_pipeline(config), ctx)
    return optimized, ctx
