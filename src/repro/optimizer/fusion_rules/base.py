"""Base class for fusion rules that operate on flattened join regions
(§IV.E: join-based rules run before join reordering, over a conceptual
n-ary join, attempting pairwise applications)."""

from __future__ import annotations

import abc

from repro.algebra.operators import PlanNode
from repro.optimizer.context import OptimizerContext
from repro.optimizer.join_graph import (
    JoinGraph,
    flatten_join_region,
    rebuild_join_region,
)
from repro.optimizer.rule import PlanPass


class JoinGraphRule(PlanPass):
    """Walks the plan; at each join-region root, flattens the region,
    recursively processes the inputs (regions nest inside derived
    tables and semi-join subqueries), then lets the concrete rule
    transform the n-ary graph."""

    name = "join_graph_rule"

    @abc.abstractmethod
    def apply(self, graph: JoinGraph, ctx: OptimizerContext) -> bool:
        """Mutate ``graph``; return True when something changed."""

    def run(self, plan: PlanNode, ctx: OptimizerContext) -> PlanNode:
        graph = flatten_join_region(plan)
        if graph is None:
            children = plan.children
            if not children:
                return plan
            new_children = tuple(self.run(child, ctx) for child in children)
            if new_children != children:
                plan = plan.with_children(new_children)
            return plan

        inputs_changed = False
        new_inputs = []
        for node in graph.inputs:
            processed = self.run(node, ctx)
            inputs_changed |= processed is not node
            new_inputs.append(processed)
        graph.inputs = new_inputs
        for semi in graph.semis:
            processed = self.run(semi.right, ctx)
            inputs_changed |= processed is not semi.right
            semi.right = processed

        # Cost-gated mode (DESIGN.md §15): snapshot the region before
        # the rule mutates it, then price the rebuilt candidate against
        # the rebuilt original.  The two rebuilds share every input
        # subtree by identity, so the model prices only the deltas.
        snapshot = graph.copy() if ctx.cost_model is not None else None
        changed = self.apply(graph, ctx)
        if changed and snapshot is not None:
            candidate = rebuild_join_region(graph, ctx)
            original = rebuild_join_region(snapshot, ctx)
            if not ctx.choose(self.name, original, candidate):
                return original if inputs_changed else plan
            ctx.record(self.name)
            return candidate
        if changed:
            ctx.record(self.name)
        if changed or inputs_changed:
            return rebuild_join_region(graph, ctx)
        return plan
