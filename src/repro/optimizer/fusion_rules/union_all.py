"""UnionAll fusion (§IV.D).

Pattern: the branches of a UNION ALL are overlapping views of one
common expression (different filters / projections over the same CTE).
The engine would evaluate the common expression once per branch; the
rewrite reads it once, replicates rows with a constant tag table, and
compensates per branch::

    Project[out_k := CASE WHEN tag=1 THEN c1k ELSE M(c2k) END, …]
      Filter[(tag=1 AND L) OR (tag=2 AND R)]
        CrossJoin
          P                         -- Fuse of all branches
          ConstantTable((1),(2)) Temp(tag)

Extensions implemented per the paper: native n-ary fusion of all
branches (not pairwise), CASE elision when both branches map a column
to the same fused column, and the contradiction fast path — when the
compensating filters are provably disjoint (L AND R = FALSE) the tag
table is unnecessary and the branch of each row is recovered from L
itself.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    integer,
    make_and,
    make_or,
)
from repro.algebra.operators import (
    Filter,
    Join,
    JoinKind,
    PlanNode,
    Project,
    UnionAll,
    Values,
)
from repro.algebra.simplify import is_contradiction
from repro.algebra.types import DataType
from repro.fusion.mapping import ColumnMapping
from repro.optimizer.context import OptimizerContext
from repro.optimizer.rule import RewriteRule


def fuse_branches(
    branches: list[PlanNode], ctx: OptimizerContext
) -> tuple[PlanNode, list[ColumnMapping], list[Expression]] | None:
    """N-ary fusion: fold Fuse over the branch list.

    Returns the fused plan plus, per branch, the column mapping into the
    fused plan and the compensating filter.  None when any step fails.
    """
    plan = branches[0]
    mappings: list[ColumnMapping] = [ColumnMapping()]
    filters: list[Expression] = [TRUE]
    for branch in branches[1:]:
        result = ctx.fuser.fuse(plan, branch)
        if result is None:
            return None
        plan = result.plan
        # Earlier branches' compensators were expressed over the old
        # fused plan, whose columns keep their identity in the new one;
        # tightening with the new left compensator restores them.
        filters = [make_and([f, result.left_filter]) for f in filters]
        mappings.append(result.mapping)
        filters.append(result.right_filter)
    return plan, mappings, filters


class UnionAllFusion(RewriteRule):
    name = "union_all_fusion"
    #: §IV.D's tag-table path replicates every common row once per
    #: branch (cross join against the tag Values) — the SystemML-style
    #: case where always-fuse loses: over a narrow scan the replicated
    #: row work outweighs the one saved scan.  The cost model prices it
    #: per candidate (DESIGN.md §15).
    cost_gated = True

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, UnionAll) or len(node.inputs) < 2:
            return None
        fused = fuse_branches(list(node.inputs), ctx)
        if fused is None:
            return None
        plan, mappings, filters = fused
        if not ctx.worth_fusing(plan):
            return None
        if all(f == TRUE for f in filters[1:]) and len(node.inputs) > 1:
            # Identical branches still need replication — fall through.
            pass

        branch_columns = [
            tuple(mapping.map_column(c) for c in branch)
            for mapping, branch in zip(mappings, node.input_columns)
        ]

        if len(node.inputs) == 2 and self._disjoint(filters[0], filters[1]):
            return self._without_tag(node, plan, branch_columns, filters, ctx)
        return self._with_tag(node, plan, branch_columns, filters, ctx)

    @staticmethod
    def _disjoint(left: Expression, right: Expression) -> bool:
        return is_contradiction(make_and([left, right]))

    def _with_tag(
        self,
        node: UnionAll,
        plan: PlanNode,
        branch_columns: list[tuple],
        filters: list[Expression],
        ctx: OptimizerContext,
    ) -> PlanNode:
        tag = ctx.allocator.fresh("tag", DataType.INTEGER)
        constant = Values((tag,), tuple((i + 1,) for i in range(len(filters))))
        crossed = Join(JoinKind.CROSS, plan, constant)
        dispatch = make_or(
            make_and([Comparison("=", ColumnRef(tag), integer(i + 1)), f])
            for i, f in enumerate(filters)
        )
        filtered = Filter(crossed, dispatch)
        assignments = []
        for position, output in enumerate(node.columns):
            sources = [branch[position] for branch in branch_columns]
            if all(s == sources[0] for s in sources):
                assignments.append((output, ColumnRef(sources[0])))
                continue
            whens = tuple(
                (
                    Comparison("=", ColumnRef(tag), integer(i + 1)),
                    ColumnRef(source),
                )
                for i, source in enumerate(sources[:-1])
            )
            assignments.append((output, Case(whens, ColumnRef(sources[-1]))))
        return Project(filtered, tuple(assignments))

    def _without_tag(
        self,
        node: UnionAll,
        plan: PlanNode,
        branch_columns: list[tuple],
        filters: list[Expression],
        ctx: OptimizerContext,
    ) -> PlanNode:
        """Contradiction fast path: each fused row belongs to at most
        one branch, so no replication is needed."""
        filtered = Filter(plan, make_or(filters))
        assignments = []
        for position, output in enumerate(node.columns):
            first, second = (branch[position] for branch in branch_columns)
            if first == second:
                assignments.append((output, ColumnRef(first)))
            else:
                case = Case(((filters[0], ColumnRef(first)),), ColumnRef(second))
                assignments.append((output, case))
        return Project(filtered, tuple(assignments))
