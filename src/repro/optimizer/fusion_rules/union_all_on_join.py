"""UnionAllOnJoin (§IV.C).

Pattern: a UNION ALL combines two computations that are structurally
the same join except for one (or more) differing inputs — the paper's
motivating case unions "some analytical insight applied over different
fact tables" (TPC-DS Q23: catalog_sales vs web_sales, each joined to
date_dim and semi-joined against the expensive ``freq_items`` and
``best_customer`` CTEs).

Rewrite: push the UNION ALL below the joins.  Each branch's differing
inputs are projected onto a set of unified *slots* (the paper's
``UA1``/``UA2`` extra-column machinery), unioned, and the shared
inputs/semi-joins are applied once above::

    SemiJoin[slot IN fused Z]            -- each fused semi, once
      Join[slot = d_date_sk]             -- each fused common input, once
        UnionAll
          Project[slots over branch-1 solo inputs]
          Project[slots over branch-2 solo inputs]
        date_dim

The implementation works over flattened join regions and matches:

* **common inputs** — pairs that fuse exactly across branches;
* **solo inputs** — the per-branch remainder (the differing tables);
* **conjuncts** — shared ones must match modulo the mapping; mixed
  solo/common equalities unify into slots; solo-only predicates stay
  inside the branch;
* **semi/anti joins** — right sides must fuse exactly; probe
  expressions unify into slots.

N-ary UNION ALLs are handled by fusing branch pairs repeatedly, as the
paper suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    ColumnRef,
    Expression,
    Literal,
    columns_in,
    normalize,
    substitute,
)
from repro.algebra.operators import PlanNode, Project, UnionAll
from repro.algebra.schema import Column
from repro.fusion.mapping import ColumnMapping
from repro.optimizer.context import OptimizerContext
from repro.optimizer.join_graph import (
    JoinGraph,
    SemiEntry,
    flatten_join_region,
    rebuild_join_region,
)
from repro.optimizer.rule import RewriteRule


@dataclass
class _Branch:
    """One UNION ALL branch, decomposed."""

    graph: JoinGraph
    #: Output expressions, positionally aligned with the union schema,
    #: over the region's (inputs') columns.
    outputs: list[Expression]


def _decompose(plan: PlanNode, columns: tuple[Column, ...]) -> _Branch | None:
    assignments: dict[int, Expression] = {}
    core = plan
    if isinstance(plan, Project):
        assignments = {t.cid: e for t, e in plan.assignments}
        core = plan.child
    graph = flatten_join_region(core)
    if graph is None:
        return None
    graph.apply_substitution()
    outputs = []
    for column in columns:
        expr = assignments.get(column.cid, ColumnRef(column))
        expr = substitute(expr, graph.substitution)
        outputs.append(expr)
    return _Branch(graph, outputs)


def _unify(
    e1: Expression,
    e2: Expression,
    solo1: set[Column],
    solo2: set[Column],
    pairs: list[tuple[Expression, Expression]],
) -> bool:
    """Structurally unify two expressions: identical except that where
    ``e1`` references solo-branch-1 columns, ``e2`` references
    solo-branch-2 columns — those positions become slot pairs."""
    if isinstance(e1, ColumnRef) and isinstance(e2, ColumnRef):
        if e1.column == e2.column:
            return True
        if e1.column in solo1 and e2.column in solo2:
            if e1.column.dtype is not e2.column.dtype:
                return False
            pairs.append((e1, e2))
            return True
        return False
    if type(e1) is not type(e2):
        return False
    if isinstance(e1, Literal):
        return e1 == e2
    children1, children2 = e1.children, e2.children
    if len(children1) != len(children2):
        return False
    if not all(
        _unify(c1, c2, solo1, solo2, pairs) for c1, c2 in zip(children1, children2)
    ):
        return False
    # Non-child payload (operator symbols, function names, …) must match.
    probe1 = e1.with_children(tuple(children2))
    return probe1 == e2


class UnionAllOnJoin(RewriteRule):
    name = "union_all_on_join"

    def rewrite(self, node: PlanNode, ctx: OptimizerContext) -> PlanNode | None:
        if not isinstance(node, UnionAll) or len(node.inputs) < 2:
            return None
        for i in range(len(node.inputs)):
            for j in range(i + 1, len(node.inputs)):
                fused = self._fuse_pair(
                    node.inputs[i],
                    node.input_columns[i],
                    node.inputs[j],
                    node.input_columns[j],
                    ctx,
                )
                if fused is None:
                    continue
                plan, out_cols = fused
                if len(node.inputs) == 2:
                    # Full replacement: restore the union's own columns.
                    assignments = tuple(
                        (target, ColumnRef(src))
                        for target, src in zip(node.columns, out_cols)
                    )
                    return Project(plan, assignments)
                inputs = [
                    p for k, p in enumerate(node.inputs) if k not in (i, j)
                ]
                branches = [
                    b for k, b in enumerate(node.input_columns) if k not in (i, j)
                ]
                inputs.insert(i, plan)
                branches.insert(i, out_cols)
                return UnionAll(tuple(inputs), node.columns, tuple(branches))
        return None

    def _fuse_pair(
        self,
        plan1: PlanNode,
        cols1: tuple[Column, ...],
        plan2: PlanNode,
        cols2: tuple[Column, ...],
        ctx: OptimizerContext,
    ) -> tuple[PlanNode, tuple[Column, ...]] | None:
        b1 = _decompose(plan1, cols1)
        b2 = _decompose(plan2, cols2)
        if b1 is None or b2 is None:
            return None
        g1, g2 = b1.graph, b2.graph

        # --- match common inputs across the branches ----------------------
        used2: set[int] = set()
        common: list[tuple[int, int, object]] = []
        solo1_idx: list[int] = []
        for i1, input1 in enumerate(g1.inputs):
            hit = None
            for i2, input2 in enumerate(g2.inputs):
                if i2 in used2:
                    continue
                result = ctx.fuser.fuse(input1, input2)
                if result is not None and result.is_exact:
                    hit = (i2, result)
                    break
            if hit is None:
                solo1_idx.append(i1)
            else:
                used2.add(hit[0])
                common.append((i1, hit[0], hit[1]))
        solo2_idx = [i for i in range(len(g2.inputs)) if i not in used2]
        if not solo1_idx or not solo2_idx:
            return None  # identical join trees: the generic UnionAll rule's job

        shared_worth = any(ctx.worth_fusing(g1.inputs[i1]) for i1, _, _ in common)

        mapping = ColumnMapping()
        for _, _, result in common:
            mapping = mapping.merged(result.mapping)

        # --- pair up semi/anti joins -------------------------------------
        if len(g1.semis) != len(g2.semis):
            return None
        semi_pairs: list[tuple[SemiEntry, SemiEntry, object]] = []
        remaining = list(range(len(g2.semis)))
        for semi1 in g1.semis:
            hit = None
            for k in remaining:
                semi2 = g2.semis[k]
                if semi1.kind is not semi2.kind:
                    continue
                result = ctx.fuser.fuse(semi1.right, semi2.right)
                if result is not None and result.is_exact:
                    hit = (k, result)
                    break
            if hit is None:
                return None
            remaining.remove(hit[0])
            semi_pairs.append((semi1, g2.semis[hit[0]], hit[1]))
            shared_worth = shared_worth or ctx.worth_fusing(semi1.right)
        if not shared_worth:
            return None

        solo1_cols = {
            c for i in solo1_idx for c in g1.inputs[i].output_columns
        }
        solo2_cols = {
            c for i in solo2_idx for c in g2.inputs[i].output_columns
        }
        sub2 = {src.cid: ColumnRef(dst) for src, dst in mapping.items()}

        # --- classify conjuncts ------------------------------------------
        shared_conjuncts: list[tuple[Expression, list]] = []
        branch1_filters: list[Expression] = []
        branch2_filters: list[Expression] = []
        pending2 = list(g2.conjuncts)
        for term1 in g1.conjuncts:
            refs = columns_in(term1)
            if refs <= solo1_cols:
                branch1_filters.append(term1)
                continue
            matched = None
            for term2 in pending2:
                trial: list[tuple[Expression, Expression]] = []
                if _unify(
                    term1, substitute(term2, sub2), solo1_cols, solo2_cols, trial
                ):
                    matched = (term2, trial)
                    break
            if matched is None:
                return None
            pending2.remove(matched[0])
            shared_conjuncts.append((term1, matched[1]))
        for term2 in pending2:
            if columns_in(substitute(term2, sub2)) <= solo2_cols:
                branch2_filters.append(term2)
            else:
                return None

        # --- semi conditions ----------------------------------------------
        shared_semis: list[tuple[SemiEntry, Expression, list]] = []
        for semi1, semi2, result in semi_pairs:
            right_sub = {
                src.cid: ColumnRef(dst) for src, dst in result.mapping.items()
            }
            cond2 = substitute(substitute(semi2.condition, right_sub), sub2)
            trial: list[tuple[Expression, Expression]] = []
            if not _unify(semi1.condition, cond2, solo1_cols, solo2_cols, trial):
                return None
            # The fused right plan (a schema superset of semi1's right,
            # carrying any columns branch 2's condition mapped onto).
            fused_right = result.plan
            shared_semis.append(
                (SemiEntry(semi1.kind, fused_right, semi1.condition), semi1.condition, trial)
            )

        # --- output expressions ------------------------------------------
        output_plan: list[tuple[str, object]] = []
        for e1, e2 in zip(b1.outputs, b2.outputs):
            e2_mapped = substitute(e2, sub2)
            refs1 = columns_in(e1)
            if normalize(e1) == normalize(e2_mapped) and not (refs1 & solo1_cols):
                output_plan.append(("shared", e1))
                continue
            trial = []
            if _unify(e1, e2_mapped, solo1_cols, solo2_cols, trial):
                # Output realized via slots (often the whole expression).
                output_plan.append(("slots", (e1, trial)))
                continue
            return None

        # --- deduplicate slots and allocate columns ------------------------
        slots: list[tuple[Expression, Expression]] = []
        for _, pairs in shared_conjuncts:
            slots.extend(pairs)
        for _, _, pairs in shared_semis:
            slots.extend(pairs)
        for kind, payload in output_plan:
            if kind == "slots":
                slots.extend(payload[1])
        unique: list[tuple[Expression, Expression]] = []
        index: dict[tuple, int] = {}
        for e1, e2 in slots:
            key = (normalize(e1), normalize(e2))
            if key not in index:
                index[key] = len(unique)
                unique.append((e1, e2))

        targets1 = [
            ctx.allocator.fresh(f"slot{k}", e1.dtype) for k, (e1, _) in enumerate(unique)
        ]
        targets2 = [
            ctx.allocator.fresh(f"slot{k}", e2.dtype) for k, (_, e2) in enumerate(unique)
        ]
        union_cols = tuple(
            ctx.allocator.fresh(f"u_slot{k}", e1.dtype)
            for k, (e1, _) in enumerate(unique)
        )

        def slot_for(e1: Expression, e2: Expression) -> Column:
            return union_cols[index[(normalize(e1), normalize(e2))]]

        def apply_slots(expr: Expression, pairs: list) -> Expression:
            # Replace each unified solo sub-expression with its slot.
            replaced = expr
            for e1, e2 in pairs:
                slot = ColumnRef(slot_for(e1, e2))

                def swap(node: Expression, target=e1, slot=slot) -> Expression:
                    return slot if node == target else node

                from repro.algebra.expressions import transform

                replaced = transform(replaced, swap)
            return replaced

        # --- build the pushed-down union -----------------------------------
        core1 = self._branch_core(
            g1, solo1_idx, branch1_filters, unique, targets1, side=0, ctx=ctx
        )
        core2 = self._branch_core(
            g2, solo2_idx, branch2_filters, unique, targets2, side=1, ctx=ctx
        )
        union = UnionAll(
            (core1, core2), union_cols, (tuple(targets1), tuple(targets2))
        )

        # --- re-assemble shared joins and semis -----------------------------
        conjuncts = [apply_slots(t, pairs) for t, pairs in shared_conjuncts]
        semis = [
            SemiEntry(entry.kind, entry.right, apply_slots(cond, pairs))
            for entry, cond, pairs in shared_semis
        ]
        out_cols = []
        assignments = []
        for kind, payload in output_plan:
            if kind == "shared":
                expr = payload
            else:
                expr, pairs = payload
                expr = apply_slots(expr, pairs)
            target = ctx.allocator.fresh("u_out", expr.dtype)
            out_cols.append(target)
            assignments.append((target, expr))

        # Use the fused plans for the shared inputs: schema supersets of
        # branch 1's originals, carrying any columns the branch-2 side
        # mapped onto.
        inputs = [union] + [result.plan for _, _, result in common]
        graph = JoinGraph(inputs, conjuncts, semis, tuple())
        joined = rebuild_join_region(graph, ctx, project_outputs=False)
        return Project(joined, tuple(assignments)), tuple(out_cols)

    def _branch_core(
        self,
        graph: JoinGraph,
        solo_idx: list[int],
        filters: list[Expression],
        slots: list[tuple[Expression, Expression]],
        targets: list[Column],
        side: int,
        ctx: OptimizerContext,
    ) -> PlanNode:
        inputs = [graph.inputs[i] for i in solo_idx]
        sub_graph = JoinGraph(inputs, list(filters), [], tuple())
        joined = rebuild_join_region(sub_graph, ctx, project_outputs=False)
        assignments = tuple(
            (target, pair[side]) for target, pair in zip(targets, slots)
        )
        return Project(joined, assignments)
