"""JoinOnKeys (§IV.B).

When two join inputs are keyed by their join columns, every left row
matches at most one right row, so the join merely *extends* rows with
columns from the other side; if the two sides fuse, the join can be
replaced by the fused plan plus compensating filters and NOT NULL
conditions.

Like the paper, we specialize to inputs that are GroupBy operators
(their grouping columns are keys — key derivation through arbitrary
plans is not available), in two variants:

* **keyed**: both inputs are GroupBys whose keys are pairwise equated
  by the join conjuncts (directly or transitively — the §V.D case where
  both R0 and R2 join to the same fact-table column).  Replacement:
  ``Filter[L AND R AND keys NOT NULL](Fuse(G1, G2))``.
* **scalar**: both inputs are scalar aggregates connected by a cross
  product (§V.B, TPC-DS Q09/Q28/Q88).  Replacement: the fused scalar
  GroupBy.  Applied pairwise until no two scalar aggregates remain,
  which collapses Q09's fifteen scans of store_sales into one.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Expression,
    IsNull,
    Not,
    make_and,
)
from repro.algebra.operators import Filter, GroupBy, PlanNode
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.fusion_rules.base import JoinGraphRule
from repro.optimizer.join_graph import EquivalenceClasses, JoinGraph, peel_renaming


class JoinOnKeys(JoinGraphRule):
    name = "join_on_keys"

    def apply(self, graph: JoinGraph, ctx: OptimizerContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            graph.apply_substitution()
            classes = EquivalenceClasses(graph.conjuncts)
            count = len(graph.inputs)
            for i in range(count):
                for j in range(i + 1, count):
                    if self._try_pair(graph, i, j, classes, ctx):
                        progress = True
                        changed = True
                        break
                if progress:
                    break
        return changed

    def _try_pair(
        self,
        graph: JoinGraph,
        i: int,
        j: int,
        classes: EquivalenceClasses,
        ctx: OptimizerContext,
    ) -> bool:
        left_input, right_input = graph.inputs[i], graph.inputs[j]
        g1, exposure1 = peel_renaming(left_input)
        g2, exposure2 = peel_renaming(right_input)
        if not (isinstance(g1, GroupBy) and isinstance(g2, GroupBy)):
            return False
        if g1.is_scalar != g2.is_scalar:
            return False

        if not g1.is_scalar:
            if not self._keys_equated(g1, exposure1, g2, exposure2, classes):
                return False

        result = ctx.fuser.fuse(g1, g2)
        if result is None:
            return False
        if not ctx.worth_fusing(g1.child):
            return False

        terms: list[Expression] = []
        if result.left_filter != TRUE:
            terms.append(result.left_filter)
        if result.right_filter != TRUE:
            terms.append(result.right_filter)
        if not g1.is_scalar:
            for key in g1.keys:
                terms.append(Not(IsNull(ColumnRef(key))))
        replacement: PlanNode = result.plan
        if terms:
            replacement = Filter(replacement, make_and(terms))

        substitution: dict[int, Expression] = {}
        for outer_cid, inner in exposure1.items():
            if outer_cid != inner.cid:
                substitution[outer_cid] = ColumnRef(inner)
        fused_outputs = set(result.plan.output_columns)
        for column in g2.output_columns:
            mapped = result.mapping.map_column(column)
            if mapped.cid != column.cid:
                substitution[column.cid] = ColumnRef(mapped)
        for outer_cid, inner in exposure2.items():
            mapped = result.mapping.map_column(inner)
            if outer_cid != mapped.cid:
                substitution[outer_cid] = ColumnRef(mapped)
        if any(
            isinstance(expr, ColumnRef) and expr.column not in fused_outputs
            for expr in substitution.values()
        ):
            return False  # defensive: a mapping target escaped the fused plan

        graph.inputs[i] = replacement
        del graph.inputs[j]
        graph.add_substitution(substitution)
        graph.apply_substitution()
        return True

    @staticmethod
    def _keys_equated(
        g1: GroupBy,
        exposure1: dict[int, Column],
        g2: GroupBy,
        exposure2: dict[int, Column],
        classes: EquivalenceClasses,
    ) -> bool:
        """Every key of g1 must be join-equated (possibly transitively)
        with a distinct key of g2, covering both key sets."""

        def outer_keys(grouped: GroupBy, exposure: dict[int, Column]) -> list[Column] | None:
            if not exposure:
                return list(grouped.keys)
            reverse: dict[int, Column] = {}
            for outer_cid, inner in exposure.items():
                reverse.setdefault(inner.cid, Column(outer_cid, inner.name, inner.dtype))
            out = []
            for key in grouped.keys:
                exposed = reverse.get(key.cid)
                if exposed is None:
                    return None
                out.append(exposed)
            return out

        keys1 = outer_keys(g1, exposure1)
        keys2 = outer_keys(g2, exposure2)
        if keys1 is None or keys2 is None or len(keys1) != len(keys2):
            return False
        remaining = list(keys2)
        for key in keys1:
            match = next((k for k in remaining if classes.connected(key, k)), None)
            if match is None:
                return False
            remaining.remove(match)
        return True
