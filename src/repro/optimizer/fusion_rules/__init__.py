"""The paper's fusion-based optimization rules (§IV)."""

from repro.optimizer.fusion_rules.groupby_join_to_window import GroupByJoinToWindow
from repro.optimizer.fusion_rules.join_on_keys import JoinOnKeys
from repro.optimizer.fusion_rules.union_all import UnionAllFusion, fuse_branches
from repro.optimizer.fusion_rules.union_all_on_join import UnionAllOnJoin

__all__ = [
    "GroupByJoinToWindow",
    "JoinOnKeys",
    "UnionAllFusion",
    "UnionAllOnJoin",
    "fuse_branches",
]
