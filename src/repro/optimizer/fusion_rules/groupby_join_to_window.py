"""GroupByJoinToWindow (§IV.A).

Pattern (over a flattened n-ary join): some input ``G`` is a GroupBy —
possibly under projections, including *computed* ones like
``avg(x) * 1.2`` from decorrelation (§IV.E: "there could be a Project
operator in between the Join and GroupBy, generating an expression that
is used as a residual condition") — whose input fuses *exactly* with
another input ``P1``, and the join conjuncts equate every grouping key
of ``G`` with the corresponding column of ``P1`` (``cli = M(cri)``,
possibly transitively through other equalities).

Rewrite: drop ``G`` and replace ``P1`` with::

    Window[A OVER (PARTITION BY cl1..cln)]
      Filter[cl1 IS NOT NULL AND … AND cln IS NOT NULL]
        P1

Columns of ``G`` referenced elsewhere are substituted: key outputs map
to the partition columns, aggregate outputs keep their identity as
window-function outputs, and projected expressions over them are
carried across the transformation.  Remaining conditions on ``G`` (the
paper's ``M(C2)``) stay in the conjunct pool and end up as filters
above.

This is the rewrite behind the paper's motivating TPC-DS Q65 example
and the decorrelated Q01/Q30 (§V.A).
"""

from __future__ import annotations

from repro.algebra.expressions import (
    TRUE,
    ColumnRef,
    Expression,
    IsNull,
    Not,
    make_and,
    substitute,
)
from repro.algebra.operators import (
    Filter,
    GroupBy,
    PlanNode,
    Project,
    Window,
    WindowAssignment,
)
from repro.algebra.schema import Column
from repro.optimizer.context import OptimizerContext
from repro.optimizer.fusion_rules.base import JoinGraphRule
from repro.optimizer.join_graph import EquivalenceClasses, JoinGraph


def peel_projections(
    plan: PlanNode,
) -> tuple[PlanNode, dict[int, Expression], list[Expression]]:
    """Strip a stack of projections (renaming or computed) and filters,
    returning the inner plan, the composed map from outer column ids to
    expressions over the inner plan's outputs, and the peeled filter
    conditions (also over the inner plan's outputs).

    The filter support is §IV.E's extension: "there could be a filter
    pushed in between the join and the group-by operator (e.g., a
    single-column predicate on an aggregate column)" — such conditions
    are pulled above the rewrite as residual conjuncts.
    """
    exposure: dict[int, Expression] = {}
    conditions: list[Expression] = []
    while True:
        if isinstance(plan, Project):
            layer = {target.cid: expr for target, expr in plan.assignments}
            if exposure:
                exposure = {
                    cid: substitute(expr, layer) for cid, expr in exposure.items()
                }
            else:
                exposure = dict(layer)
            conditions = [substitute(c, layer) for c in conditions]
            plan = plan.child
            continue
        if isinstance(plan, Filter):
            conditions.append(plan.condition)
            plan = plan.child
            continue
        return plan, exposure, conditions


class GroupByJoinToWindow(JoinGraphRule):
    name = "groupby_join_to_window"

    def apply(self, graph: JoinGraph, ctx: OptimizerContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            graph.apply_substitution()
            classes = EquivalenceClasses(graph.conjuncts)
            for j, candidate in enumerate(graph.inputs):
                if self._try_input(graph, j, candidate, classes, ctx):
                    progress = True
                    changed = True
                    break
        return changed

    def _try_input(
        self,
        graph: JoinGraph,
        j: int,
        candidate: PlanNode,
        classes: EquivalenceClasses,
        ctx: OptimizerContext,
    ) -> bool:
        grouped, exposure, peeled_conditions = peel_projections(candidate)
        if not isinstance(grouped, GroupBy) or grouped.is_scalar:
            return False
        if not grouped.aggregates:
            return False  # a pure DISTINCT is JoinOnKeys territory
        if any(a.mask != TRUE or a.distinct for a in grouped.aggregates):
            return False
        key_exposure = self._key_exposure(grouped, exposure)
        if key_exposure is None:
            return False

        for i, other in enumerate(graph.inputs):
            if i == j:
                continue
            result = ctx.fuser.fuse(other, grouped.child)
            if result is None or not result.is_exact:
                continue
            if not ctx.worth_fusing(grouped.child):
                continue
            other_columns = set(other.output_columns)
            partition: list[Column] = []
            ok = True
            for key in grouped.keys:
                mirror = result.mapping.map_column(key)
                if mirror not in other_columns:
                    ok = False
                    break
                if not classes.connected(mirror, key_exposure[key.cid]):
                    ok = False
                    break
                partition.append(mirror)
            if not ok:
                continue

            functions = tuple(
                WindowAssignment(
                    agg.target,
                    agg.func,
                    None
                    if agg.argument is None
                    else result.mapping.map_expression(agg.argument),
                )
                for agg in grouped.aggregates
            )
            not_null = make_and(Not(IsNull(ColumnRef(c))) for c in partition)
            # The window must sit on the *fused* plan, not on ``other``:
            # the aggregate arguments are mapped through M into P's
            # columns, and P2-only columns (e.g. an aggregated column
            # the probe side never reads) exist only in P.  With
            # ``is_exact`` P has the same row multiset as ``other``
            # (P1 = Project[outCols(P1)](P)), so the substitution is
            # row-preserving.
            replacement = Window(
                Filter(result.plan, not_null), tuple(partition), functions
            )

            # Key outputs map to the partition columns; aggregate
            # outputs keep their identity (the window targets reuse
            # them); projected expressions are carried across.
            key_sub: dict[int, Expression] = {
                key.cid: ColumnRef(mirror)
                for key, mirror in zip(grouped.keys, partition)
            }
            substitution: dict[int, Expression] = dict(key_sub)
            for outer_cid, expr in exposure.items():
                carried = substitute(expr, key_sub)
                if not (
                    isinstance(carried, ColumnRef) and carried.column.cid == outer_cid
                ):
                    substitution[outer_cid] = carried
            # §IV.E: conditions peeled from between the join and the
            # GroupBy become residual conjuncts above the window.
            for condition in peeled_conditions:
                graph.conjuncts.append(substitute(condition, key_sub))
            graph.inputs[i] = replacement
            del graph.inputs[j]
            graph.add_substitution(substitution)
            graph.apply_substitution()
            return True
        return False

    @staticmethod
    def _key_exposure(
        grouped: GroupBy, exposure: dict[int, Expression]
    ) -> dict[int, Column] | None:
        """For each group key (inner column), the outer column under
        which the join conjuncts can see it.  None when some key is not
        exposed as a plain column."""
        if not exposure:
            return {key.cid: key for key in grouped.keys}
        out: dict[int, Column] = {}
        for key in grouped.keys:
            found = None
            for outer_cid, expr in exposure.items():
                if isinstance(expr, ColumnRef) and expr.column == key:
                    found = Column(outer_cid, key.name, key.dtype)
                    break
            if found is None:
                return None
            out[key.cid] = found
        return out
