"""Shared state for one optimization run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.operators import GroupBy, Join, PlanNode, Scan, Window
from repro.algebra.schema import ColumnAllocator
from repro.algebra.visitors import walk_plan
from repro.catalog.catalog import Catalog
from repro.fusion.fuse import Fuser
from repro.optimizer.config import OptimizerConfig

if TYPE_CHECKING:  # engine imports the optimizer; keep runtime acyclic.
    from repro.engine.plan_cache import PlanCache


@dataclass
class OptimizerContext:
    """Catalog + allocator + fuser + config, threaded through rules.

    Also records which rules fired (``fired``), which benchmarks use to
    report per-query rule coverage and tests use for plan-shape
    assertions.
    """

    catalog: Catalog
    config: OptimizerConfig
    fired: list[str] = field(default_factory=list)
    #: The session's cross-query result cache, when planning inside a
    #: cache-enabled session (None otherwise — e.g. bare ``optimize``
    #: calls in tests).  Consulted by the CrossQueryReuse pass.
    plan_cache: "PlanCache | None" = None
    #: Stored partition count per (lower-cased) table name, supplied by
    #: the session from its store.  The ParallelPlan pass uses it to
    #: skip tables too small to cut into morsels; None (bare
    #: ``optimize`` calls) makes the pass assume tables are partitioned.
    partition_counts: "dict[str, int] | None" = None

    def __post_init__(self) -> None:
        from repro.optimizer.stats import CardinalityEstimator

        self.allocator: ColumnAllocator = self.catalog.allocator
        self.fuser = Fuser(self.allocator, validate=self.config.validate_plans)
        self.estimator = CardinalityEstimator(self.catalog, plan_cache=self.plan_cache)
        #: Cost-based rewrite selection (DESIGN.md §15): present only
        #: when the config asks for it; ``choose`` degrades to
        #: always-accept otherwise.  Imported lazily — the cost module
        #: imports the rule engine, which imports this module.
        self.cost_model = None
        if self.config.cost_based:
            from repro.optimizer.cost import CostModel

            self.cost_model = CostModel(
                self.catalog, self.estimator, plan_cache=self.plan_cache
            )
        self._spool_counter = 0

    def record(self, rule_name: str) -> None:
        self.fired.append(rule_name)

    def next_spool_id(self) -> int:
        self._spool_counter += 1
        return self._spool_counter

    # -- cost heuristics (§IV.E) ------------------------------------------

    def estimated_rows(self, plan: PlanNode) -> int:
        """Statistics-based cardinality estimate (§IV.E's "local
        heuristics based on statistics and plan properties")."""
        return int(self.estimator.estimate(plan))

    def scanned_rows(self, plan: PlanNode) -> int:
        """Total stored-row mass the plan scans (the recompute cost a
        duplicate elimination saves)."""
        total = 0
        for node in walk_plan(plan):
            if isinstance(node, Scan) and self.catalog.has_table(node.table):
                total += self.catalog.row_count(node.table)
        return total

    def choose(self, name: str, original: PlanNode, candidate: PlanNode) -> bool:
        """Cost gate for one rewrite: True means *take the candidate*.

        Heuristic mode (no cost model) always accepts — rules keep
        their §IV.E behavior.  In cost mode the candidate must price no
        worse than the original; a decline is recorded as
        ``<name>.cost_declined`` so benchmarks and tests can observe
        which rewrites the model rejected.  Shared subtrees between the
        two alternatives are priced once (the model memoizes by node
        identity).
        """
        if self.cost_model is None:
            return True
        original_cost = self.cost_model.cost(original)
        candidate_cost = self.cost_model.cost(candidate)
        if candidate_cost.total <= original_cost.total:
            return True
        self.record(f"{name}.cost_declined")
        return False

    def worth_fusing(self, common: PlanNode) -> bool:
        """Is eliminating a duplicate of ``common`` worth the rewrite?

        True when the common expression contains a join/aggregation/
        window (recomputation is expensive) or scans at least the
        configured row threshold.
        """
        if any(isinstance(n, (Join, GroupBy, Window)) for n in walk_plan(common)):
            return True
        return self.scanned_rows(common) >= self.config.fusion_min_rows
