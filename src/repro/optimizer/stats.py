"""Cardinality estimation.

§IV.E: "Athena's optimizer does not yet support this form of
exploration, so we rely on local heuristics based on statistics and
plan properties to decide the applicability of each rule."  This module
provides those statistics-based estimates: textbook selectivity
formulas over the catalog's per-column statistics (ndv, min/max, null
fraction), composed bottom-up over the plan.

Estimates are used by the greedy join orderer and by the fusion rules'
cost gate; they are deliberately crude (independence assumptions,
uniformity) — exactly the "local heuristics" regime the paper
describes, as opposed to Cascades-style full exploration.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.algebra.operators import (
    EnforceSingleRow,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.schema import Column
from repro.catalog.catalog import Catalog, ColumnStats

#: Fallback selectivities when statistics cannot decide.
DEFAULT_EQUALITY = 0.1
DEFAULT_RANGE = 0.3
DEFAULT_OTHER = 0.5


class CardinalityEstimator:
    """Bottom-up row-count estimation over a plan tree."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- public -----------------------------------------------------------

    def estimate(self, plan: PlanNode) -> float:
        stats = self._collect_column_stats(plan)
        return self._rows(plan, stats)

    # -- column statistics ---------------------------------------------------

    def _collect_column_stats(self, plan: PlanNode) -> dict[int, ColumnStats]:
        """Map plan column ids to the stored column stats they originate
        from (scans introduce them; renaming projections forward them)."""
        stats: dict[int, ColumnStats] = {}

        def visit(node: PlanNode) -> None:
            for child in node.children:
                visit(child)
            if isinstance(node, Scan) and self.catalog.has_table(node.table):
                for column, source in zip(node.columns, node.source_names):
                    found = self.catalog.column_stats(node.table, source)
                    if found is not None:
                        stats[column.cid] = found
            elif isinstance(node, Project):
                for target, expr in node.assignments:
                    if isinstance(expr, ColumnRef) and expr.column.cid in stats:
                        stats[target.cid] = stats[expr.column.cid]
            elif isinstance(node, Spool):
                for target, source in zip(node.columns, node.child.output_columns):
                    if source.cid in stats:
                        stats[target.cid] = stats[source.cid]

        visit(plan)
        return stats

    # -- row counts ----------------------------------------------------------

    def _rows(self, plan: PlanNode, stats: dict[int, ColumnStats]) -> float:
        if isinstance(plan, Scan):
            rows = float(
                self.catalog.row_count(plan.table)
                if self.catalog.has_table(plan.table)
                else 1000.0
            )
            if plan.predicate is not None:
                rows *= self._selectivity(plan.predicate, stats)
            return max(rows, 1.0)
        if isinstance(plan, Values):
            return float(len(plan.rows))
        if isinstance(plan, Filter):
            return max(
                self._rows(plan.child, stats) * self._selectivity(plan.condition, stats),
                1.0,
            )
        if isinstance(plan, (Project, MarkDistinct, Window, Sort)):
            return self._rows(plan.children[0], stats)
        if isinstance(plan, Spool):
            return self._rows(plan.child, stats)
        if isinstance(plan, Limit):
            return min(self._rows(plan.child, stats), float(plan.count))
        if isinstance(plan, EnforceSingleRow):
            return 1.0
        if isinstance(plan, ScalarApply):
            return self._rows(plan.input, stats)
        if isinstance(plan, UnionAll):
            return sum(self._rows(child, stats) for child in plan.inputs)
        if isinstance(plan, GroupBy):
            child_rows = self._rows(plan.child, stats)
            if plan.is_scalar:
                return 1.0
            groups = 1.0
            for key in plan.keys:
                key_stats = stats.get(key.cid)
                groups *= key_stats.ndv if key_stats and key_stats.ndv else 25.0
            return max(min(child_rows, groups), 1.0)
        if isinstance(plan, Join):
            return self._join_rows(plan, stats)
        return 1000.0

    def _join_rows(self, plan: Join, stats: dict[int, ColumnStats]) -> float:
        left = self._rows(plan.left, stats)
        right = self._rows(plan.right, stats)
        if plan.kind is JoinKind.CROSS:
            return left * right
        selectivity = 1.0
        residual: list[Expression] = []
        for term in conjuncts(plan.condition):
            if (
                isinstance(term, Comparison)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                a = stats.get(term.left.column.cid)
                b = stats.get(term.right.column.cid)
                ndv = max(
                    a.ndv if a and a.ndv else 0,
                    b.ndv if b and b.ndv else 0,
                )
                selectivity *= 1.0 / ndv if ndv else DEFAULT_EQUALITY
            else:
                residual.append(term)
        for term in residual:
            selectivity *= self._selectivity(term, stats)
        if plan.kind in (JoinKind.SEMI, JoinKind.ANTI):
            fraction = min(right * selectivity, 1.0)
            matched = left * fraction
            return max(matched if plan.kind is JoinKind.SEMI else left - matched, 1.0)
        if plan.kind is JoinKind.LEFT:
            return max(left * right * selectivity, left)
        return max(left * right * selectivity, 1.0)

    # -- selectivity --------------------------------------------------------

    def _selectivity(self, expr: Expression, stats: dict[int, ColumnStats]) -> float:
        if isinstance(expr, Literal):
            if expr.value is True:
                return 1.0
            return 0.0
        if isinstance(expr, And):
            out = 1.0
            for term in expr.terms:
                out *= self._selectivity(term, stats)
            return out
        if isinstance(expr, Or):
            miss = 1.0
            for term in expr.terms:
                miss *= 1.0 - self._selectivity(term, stats)
            return 1.0 - miss
        if isinstance(expr, Not):
            return max(0.0, 1.0 - self._selectivity(expr.term, stats))
        if isinstance(expr, IsNull):
            column = self._plain_column(expr.operand)
            found = stats.get(column.cid) if column else None
            return found.null_fraction if found else 0.1
        if isinstance(expr, InList):
            column = self._plain_column(expr.operand)
            found = stats.get(column.cid) if column else None
            if found and found.ndv:
                return min(len(expr.items) / found.ndv, 1.0)
            return min(len(expr.items) * DEFAULT_EQUALITY, 1.0)
        if isinstance(expr, Like):
            return DEFAULT_RANGE
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, stats)
        return DEFAULT_OTHER

    def _comparison_selectivity(
        self, expr: Comparison, stats: dict[int, ColumnStats]
    ) -> float:
        column, op, value = self._column_vs_literal(expr)
        if column is None:
            return DEFAULT_EQUALITY if expr.op == "=" else DEFAULT_RANGE
        found = stats.get(column.cid)
        if found is None:
            return DEFAULT_EQUALITY if op == "=" else DEFAULT_RANGE
        non_null = 1.0 - found.null_fraction
        if op == "=":
            return non_null / found.ndv if found.ndv else DEFAULT_EQUALITY
        if op == "<>":
            return non_null * (1.0 - (1.0 / found.ndv if found.ndv else DEFAULT_EQUALITY))
        lo, hi = found.min_value, found.max_value
        if (
            lo is None
            or hi is None
            or not isinstance(value, (int, float))
            or not isinstance(lo, (int, float))
            or hi == lo
        ):
            return DEFAULT_RANGE
        fraction = (value - lo) / (hi - lo)
        fraction = min(max(fraction, 0.0), 1.0)
        if op in ("<", "<="):
            return non_null * fraction
        return non_null * (1.0 - fraction)

    @staticmethod
    def _plain_column(expr: Expression) -> Column | None:
        return expr.column if isinstance(expr, ColumnRef) else None

    @staticmethod
    def _column_vs_literal(expr: Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return left.column, expr.op, right.value
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            commuted = expr.commuted()
            return right.column, commuted.op, left.value
        return None, None, None
