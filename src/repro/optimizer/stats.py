"""Cardinality estimation.

§IV.E: "Athena's optimizer does not yet support this form of
exploration, so we rely on local heuristics based on statistics and
plan properties to decide the applicability of each rule."  This module
provides those statistics-based estimates: textbook selectivity
formulas over the catalog's per-column statistics (ndv, min/max, null
fraction), composed bottom-up over the plan.

Estimates feed the greedy join orderer, the fusion rules' cost gate,
and (ROADMAP item 3) the :class:`~repro.optimizer.cost.CostModel` that
prices rewrite alternatives.  They are deliberately crude (independence
assumptions, uniformity) — exactly the "local heuristics" regime the
paper describes, as opposed to Cascades-style full exploration.

The estimator is **memoized per plan-node identity**: one estimator
lives for one optimization run (it hangs off the
:class:`~repro.optimizer.context.OptimizerContext`), and rewrite passes
re-price overlapping subtrees constantly.  Plan nodes are immutable, so
a node's estimate never changes; column statistics are collected
incrementally (each node visited once, ever) and row counts are cached
per node.  The memo keeps a strong reference to each node, so ``id``
reuse after garbage collection cannot alias entries.  Corollary: the
estimator assumes the catalog's statistics are stable for its lifetime
— build a fresh estimator after refreshing stats.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.algebra.operators import (
    CachedScan,
    CachePopulate,
    EnforceSingleRow,
    Exchange,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    MarkDistinct,
    PlanNode,
    Project,
    Repartition,
    ScalarApply,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.schema import Column
from repro.catalog.catalog import Catalog, ColumnStats

#: Fallback selectivities when statistics cannot decide.
DEFAULT_EQUALITY = 0.1
DEFAULT_RANGE = 0.3
DEFAULT_OTHER = 0.5

#: Row-count estimate for plans with no usable statistics (unknown
#: tables, cache replays without a reachable cache entry, opaque
#: operators).
DEFAULT_ROWS = 1000.0

#: Estimates are clamped to [1, ROW_CAP]: a chain of cross joins must
#: not overflow to infinity, and downstream cost arithmetic relies on
#: every estimate being finite and at least one row.
ROW_CAP = 1e18


class CardinalityEstimator:
    """Bottom-up row-count estimation over a plan tree, memoized by
    plan-node identity."""

    def __init__(self, catalog: Catalog, plan_cache=None):
        self.catalog = catalog
        #: The session's cross-query result cache, when available:
        #: CachedScan leaves replay a cache entry whose exact row count
        #: the cache knows (far better than any guess).
        self.plan_cache = plan_cache
        #: Column cid -> stored stats, accumulated across every plan
        #: this estimator has seen (cids are globally unique).
        self._stats: dict[int, ColumnStats] = {}
        #: Nodes whose column stats have been collected.  Values keep
        #: the nodes alive so dict keys (ids) stay unambiguous.
        self._collected: dict[int, PlanNode] = {}
        #: Node id -> (node, clamped row estimate).
        self._memo: dict[int, tuple[PlanNode, float]] = {}

    # -- public -----------------------------------------------------------

    def estimate(self, plan: PlanNode) -> float:
        self._collect(plan)
        return self._rows(plan)

    # -- column statistics -------------------------------------------------

    def _collect(self, node: PlanNode) -> None:
        """Map plan column ids to the stored column stats they originate
        from (scans introduce them; renaming projections forward them).
        Each node is visited once ever: a previously collected node's
        whole subtree is already in ``self._stats``."""
        if id(node) in self._collected:
            return
        for child in node.children:
            self._collect(child)
        if isinstance(node, Scan) and self.catalog.has_table(node.table):
            for column, source in zip(node.columns, node.source_names):
                found = self.catalog.column_stats(node.table, source)
                if found is not None:
                    self._stats[column.cid] = found
        elif isinstance(node, Project):
            for target, expr in node.assignments:
                if isinstance(expr, ColumnRef) and expr.column.cid in self._stats:
                    self._stats[target.cid] = self._stats[expr.column.cid]
        elif isinstance(node, Spool):
            for target, source in zip(node.columns, node.child.output_columns):
                if source.cid in self._stats:
                    self._stats[target.cid] = self._stats[source.cid]
        self._collected[id(node)] = node

    # -- row counts ----------------------------------------------------------

    def _rows(self, plan: PlanNode) -> float:
        cached = self._memo.get(id(plan))
        if cached is not None:
            return cached[1]
        rows = min(max(self._rows_uncached(plan), 1.0), ROW_CAP)
        self._memo[id(plan)] = (plan, rows)
        return rows

    def _rows_uncached(self, plan: PlanNode) -> float:
        stats = self._stats
        if isinstance(plan, Scan):
            rows = float(
                self.catalog.row_count(plan.table)
                if self.catalog.has_table(plan.table)
                else DEFAULT_ROWS
            )
            if plan.predicate is not None:
                rows *= self._selectivity(plan.predicate, stats)
            return rows
        if isinstance(plan, Values):
            return float(len(plan.rows))
        if isinstance(plan, Filter):
            return self._rows(plan.child) * self._selectivity(plan.condition, stats)
        if isinstance(plan, (Project, MarkDistinct, Window, Sort)):
            return self._rows(plan.children[0])
        if isinstance(plan, Spool):
            return self._rows(plan.child)
        if isinstance(plan, Limit):
            return min(self._rows(plan.child), float(plan.count))
        if isinstance(plan, EnforceSingleRow):
            return 1.0
        if isinstance(plan, ScalarApply):
            return self._rows(plan.input)
        if isinstance(plan, UnionAll):
            return sum(self._rows(child) for child in plan.inputs)
        if isinstance(plan, GroupBy):
            child_rows = self._rows(plan.child)
            if plan.is_scalar:
                return 1.0
            groups = 1.0
            for key in plan.keys:
                key_stats = stats.get(key.cid)
                groups *= key_stats.ndv if key_stats and key_stats.ndv else 25.0
            return min(child_rows, groups)
        if isinstance(plan, Join):
            return self._join_rows(plan, stats)
        # Placement operators are bag-semantically the identity: an
        # Exchange/Repartition only moves rows between workers, and a
        # CachePopulate materializes its child while streaming it
        # through.  Their estimate is exactly the child's.
        if isinstance(plan, (Exchange, Repartition, CachePopulate)):
            return self._rows(plan.children[0])
        if isinstance(plan, CachedScan):
            # Replays a cache entry whose actual row count the cache
            # recorded at population time.
            if self.plan_cache is not None:
                entry = self.plan_cache.lookup(plan.fingerprint)
                if entry is not None:
                    return float(entry.row_count)
            return DEFAULT_ROWS
        if len(plan.children) == 1:
            # Unknown single-child operators default to pass-through:
            # future placement/annotation nodes should not regress to a
            # blind constant.
            return self._rows(plan.children[0])
        return DEFAULT_ROWS

    def _join_rows(self, plan: Join, stats: dict[int, ColumnStats]) -> float:
        left = self._rows(plan.left)
        right = self._rows(plan.right)
        if plan.kind is JoinKind.CROSS:
            return left * right
        selectivity = 1.0
        residual: list[Expression] = []
        for term in conjuncts(plan.condition):
            if (
                isinstance(term, Comparison)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                a = stats.get(term.left.column.cid)
                b = stats.get(term.right.column.cid)
                ndv = max(
                    a.ndv if a and a.ndv else 0,
                    b.ndv if b and b.ndv else 0,
                )
                selectivity *= 1.0 / ndv if ndv else DEFAULT_EQUALITY
            else:
                residual.append(term)
        for term in residual:
            selectivity *= self._selectivity(term, stats)
        if plan.kind in (JoinKind.SEMI, JoinKind.ANTI):
            fraction = min(right * selectivity, 1.0)
            matched = left * fraction
            return max(matched if plan.kind is JoinKind.SEMI else left - matched, 1.0)
        if plan.kind is JoinKind.LEFT:
            return max(left * right * selectivity, left)
        return max(left * right * selectivity, 1.0)

    # -- selectivity --------------------------------------------------------

    def _selectivity(self, expr: Expression, stats: dict[int, ColumnStats]) -> float:
        if isinstance(expr, Literal):
            if expr.value is True:
                return 1.0
            return 0.0
        if isinstance(expr, And):
            out = 1.0
            for term in expr.terms:
                out *= self._selectivity(term, stats)
            return out
        if isinstance(expr, Or):
            miss = 1.0
            for term in expr.terms:
                miss *= 1.0 - self._selectivity(term, stats)
            return 1.0 - miss
        if isinstance(expr, Not):
            return max(0.0, 1.0 - self._selectivity(expr.term, stats))
        if isinstance(expr, IsNull):
            column = self._plain_column(expr.operand)
            found = stats.get(column.cid) if column else None
            return found.null_fraction if found else 0.1
        if isinstance(expr, InList):
            column = self._plain_column(expr.operand)
            found = stats.get(column.cid) if column else None
            if found and found.ndv:
                # Same NULL handling as `=`: a NULL never matches any
                # list item, so the k-way union of equalities is capped
                # by the non-null fraction, not 1.0.
                non_null = 1.0 - found.null_fraction
                return min(non_null * len(expr.items) / found.ndv, non_null)
            return min(len(expr.items) * DEFAULT_EQUALITY, 1.0)
        if isinstance(expr, Like):
            return DEFAULT_RANGE
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, stats)
        return DEFAULT_OTHER

    def _comparison_selectivity(
        self, expr: Comparison, stats: dict[int, ColumnStats]
    ) -> float:
        column, op, value = self._column_vs_literal(expr)
        if column is None:
            return DEFAULT_EQUALITY if expr.op == "=" else DEFAULT_RANGE
        found = stats.get(column.cid)
        if found is None:
            return DEFAULT_EQUALITY if op == "=" else DEFAULT_RANGE
        non_null = 1.0 - found.null_fraction
        if op == "=":
            return non_null / found.ndv if found.ndv else DEFAULT_EQUALITY
        if op == "<>":
            return non_null * (1.0 - (1.0 / found.ndv if found.ndv else DEFAULT_EQUALITY))
        lo, hi = found.min_value, found.max_value
        if self._is_bool(value) or self._is_bool(lo) or self._is_bool(hi):
            # bool is an int subclass, so True would otherwise
            # interpolate as the number 1 against numeric min/max.  A
            # range over a two-valued domain is just an equality bucket.
            return non_null / found.ndv if found.ndv else DEFAULT_EQUALITY
        if (
            lo is None
            or hi is None
            or not isinstance(value, (int, float))
            or not isinstance(lo, (int, float))
            or hi == lo
        ):
            return DEFAULT_RANGE
        fraction = (value - lo) / (hi - lo)
        fraction = min(max(fraction, 0.0), 1.0)
        if op in ("<", "<="):
            return non_null * fraction
        return non_null * (1.0 - fraction)

    @staticmethod
    def _is_bool(value: object) -> bool:
        return isinstance(value, bool)

    @staticmethod
    def _plain_column(expr: Expression) -> Column | None:
        return expr.column if isinstance(expr, ColumnRef) else None

    @staticmethod
    def _column_vs_literal(expr: Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return left.column, expr.op, right.value
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            commuted = expr.commuted()
            return right.column, commuted.op, left.value
        return None, None, None
