"""Cost-based rewrite selection (ROADMAP item 3).

The paper's §IV.E falls back to local heuristics because Athena's
optimizer "does not yet support this form of exploration".  This module
goes one step beyond, in the style of "Efficient Cost-Based Rewrite in
a Bottom-Up Optimizer" (PAPERS.md): a :class:`CostModel` denominated in
the two quantities the engine already accounts for — **bytes scanned**
(storage reads, what `QueryMetrics.bytes_scanned` reports) and **rows
processed** (operator work) — prices whole plan alternatives, and the
rewrite passes compare candidate against original instead of always
firing.  The SystemML fusion paper (PAPERS.md) is the motivating
counterexample to always-fuse: fusing UNION ALL branches over a narrow
table trades one cheap scan for cross-join row replication, a bad deal
the heuristic gate cannot see.

Plan nodes are immutable, so costs are memoized **by node identity**
(strong references pin ids): when a gate prices a candidate against the
original region, the subtrees they share — rule rebuilds reuse input
subplans — are priced once, and the spool producer/consumer pair,
which shares one child object, is automatically charged a single
computation plus two streams.  Cost totals are summed over the
*distinct* nodes of a plan for the same reason.

Three consumers:

* :meth:`OptimizerContext.choose` — the per-rewrite gate (fusion
  regions, UnionAll fusion, join order);
* :class:`CostGatedGroup` — prices a whole sub-pipeline at once, for
  *enabler* rules whose payoff only appears downstream (the semi-join →
  distinct-join conversion is locally a pessimization that JoinOnKeys
  later cashes in; pricing it alone would always decline it);
* :meth:`CostModel.populate_worthwhile` — cache-populate placement:
  materialize a subplan only when recomputing it costs more than a
  multiple of the bytes the cache entry would hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.algebra.expressions import columns_in
from repro.algebra.operators import (
    CachedScan,
    CachePopulate,
    EnforceSingleRow,
    Exchange,
    Join,
    Limit,
    PlanNode,
    Repartition,
    Scan,
    Sort,
    Spool,
    UnionAll,
    Values,
    Window,
)
from repro.algebra.types import encoded_bytes
from repro.catalog.catalog import Catalog
from repro.optimizer.rule import PlanPass

if TYPE_CHECKING:
    from repro.optimizer.context import OptimizerContext
    from repro.optimizer.stats import CardinalityEstimator

#: Weight of one processed row, in scanned-byte equivalents.  Tuned on
#: the ablation workloads: high enough that row-replicating fusions of
#: narrow scans (the SystemML counterexample) are declined, low enough
#: that scan-deduplicating fusions over fact tables (q09/q65/q23) still
#: fire — their saved bytes dwarf any row-side delta.
ROW_PROCESS_BYTES = 24.0

#: Building a join hash table costs this multiple of streaming a row.
JOIN_BUILD_FACTOR = 2.0

#: Window evaluation (partition + frame evaluation + re-emit) per input
#: row, relative to streaming.  Deliberately modest: the engine's
#: windows are hash-partitioned, not sorted, so §IV.A fusions that
#: trade a join for a window must stay profitable.
WINDOW_FACTOR = 2.0

#: Sorting cost per input row relative to streaming.
SORT_FACTOR = 2.0

#: Cache-populate placement: materialize a subplan only when its
#: recompute cost is at least this multiple of the bytes the entry
#: would occupy (write + storage churn must pay for themselves).
POPULATE_RATIO = 2.0


@dataclass(frozen=True)
class PlanCost:
    """Cost of one plan, in the engine's own accounting units."""

    bytes_scanned: float
    rows_processed: float

    @property
    def total(self) -> float:
        return self.bytes_scanned + ROW_PROCESS_BYTES * self.rows_processed

    def __add__(self, other: "PlanCost") -> "PlanCost":
        return PlanCost(
            self.bytes_scanned + other.bytes_scanned,
            self.rows_processed + other.rows_processed,
        )


class CostModel:
    """Prices plans in bytes scanned + rows processed, memoized per
    plan-node identity on top of the memoized cardinality estimator."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: "CardinalityEstimator",
        plan_cache=None,
    ):
        self.catalog = catalog
        self.estimator = estimator
        self.plan_cache = plan_cache
        #: Node id -> (node, (bytes, rows)) for the node's *own*
        #: contribution.  The node reference keeps the id stable.
        self._self_costs: dict[int, tuple[PlanNode, tuple[float, float]]] = {}
        #: Root id -> (root, PlanCost) for whole-subtree totals.
        self._totals: dict[int, tuple[PlanNode, PlanCost]] = {}

    # -- public -----------------------------------------------------------

    def cost(self, plan: PlanNode) -> PlanCost:
        """Total cost of ``plan``: per-node contributions summed over
        the subtree's *distinct* nodes.  Alternatives produced by a
        rewrite share untouched input subtrees by object identity, so
        pricing both alternatives prices the shared parts once — and a
        subtree referenced twice (spool producer + consumer) is charged
        one computation, not two."""
        cached = self._totals.get(id(plan))
        if cached is not None:
            return cached[1]
        total_bytes = 0.0
        total_rows = 0.0
        seen: set[int] = set()
        stack: list[PlanNode] = [plan]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node_bytes, node_rows = self._self_cost(node)
            total_bytes += node_bytes
            total_rows += node_rows
            stack.extend(node.children)
        out = PlanCost(total_bytes, total_rows)
        self._totals[id(plan)] = (plan, out)
        return out

    def populate_worthwhile(self, plan: PlanNode) -> bool:
        """Cache-populate placement: is materializing ``plan`` priced to
        pay off?  Recomputing it must cost at least ``POPULATE_RATIO``
        times the bytes the cache entry would hold."""
        recompute = self.cost(plan).total
        rows = self.estimator.estimate(plan)
        width = sum(encoded_bytes(c.dtype) for c in plan.output_columns) or 1.0
        return recompute >= POPULATE_RATIO * rows * width

    # -- per-node contributions -------------------------------------------

    def _rows(self, plan: PlanNode) -> float:
        return self.estimator.estimate(plan)

    def _self_cost(self, node: PlanNode) -> tuple[float, float]:
        cached = self._self_costs.get(id(node))
        if cached is not None:
            return cached[1]
        out = self._self_cost_uncached(node)
        self._self_costs[id(node)] = (node, out)
        return out

    def _self_cost_uncached(self, node: PlanNode) -> tuple[float, float]:
        if isinstance(node, Scan):
            return self._scan_cost(node)
        if isinstance(node, Values):
            return 0.0, float(len(node.rows))
        if isinstance(node, CachedScan):
            # Replaying cached vectors reads nothing from storage and
            # streams the entry's rows.
            return 0.0, self._rows(node)
        if isinstance(node, Join):
            probe = self._rows(node.left)
            build = JOIN_BUILD_FACTOR * self._rows(node.right)
            return 0.0, probe + build + self._rows(node)
        if isinstance(node, Window):
            return 0.0, WINDOW_FACTOR * self._rows(node.child)
        if isinstance(node, Sort):
            return 0.0, SORT_FACTOR * self._rows(node.child)
        if isinstance(node, UnionAll):
            return 0.0, self._rows(node)
        if isinstance(node, Limit):
            # Streaming limits stop pulling once satisfied.
            return 0.0, self._rows(node)
        if isinstance(node, EnforceSingleRow):
            return 0.0, 1.0
        if isinstance(node, (Spool, CachePopulate, Exchange, Repartition)):
            # Materialization / movement: one extra streaming pass over
            # the child's rows.  A spool's producer and consumer are
            # distinct nodes sharing one child object, so the pair is
            # charged write + read while the computation prices once.
            return 0.0, self._rows(node.children[0])
        if node.children:
            # Filter/Project/GroupBy/MarkDistinct/ScalarApply and any
            # other streaming operator: one pass over the input rows.
            return 0.0, sum(self._rows(child) for child in node.children)
        return 0.0, self._rows(node)

    def _scan_cost(self, node: Scan) -> tuple[float, float]:
        if self.catalog.has_table(node.table):
            rows = float(self.catalog.row_count(node.table))
            rows *= self._prune_fraction(node, rows)
            width = sum(
                self.catalog.column_width(node.table, source)
                for source in node.source_names
            )
            return rows * max(width, 1.0), rows
        rows = self._rows(node)
        width = sum(encoded_bytes(c.dtype) for c in node.columns) or 1.0
        return rows * width, rows

    def _prune_fraction(self, node: Scan, rows: float) -> float:
        """Fraction of the table a scan actually reads.  Storage prunes
        whole partitions when the pushed-down predicate constrains the
        partition column; other predicates are evaluated row-by-row and
        save no bytes."""
        table = self.catalog.table(node.table)
        if table.partition_column is None or node.predicate is None:
            return 1.0
        part = table.partition_column.lower()
        part_cids = {
            column.cid
            for column, source in zip(node.columns, node.source_names)
            if source.lower() == part
        }
        if not part_cids or not any(
            c.cid in part_cids for c in columns_in(node.predicate)
        ):
            return 1.0
        selectivity = self._rows(node) / max(rows, 1.0)
        return min(max(selectivity, 0.05), 1.0)


class CostGatedGroup(PlanPass):
    """Run a sub-pipeline speculatively; keep its output only when the
    cost model prices it no worse than the input.

    This is how *enabler* rewrites are priced: the semi-join →
    distinct-join conversion is locally a pessimization whose payoff is
    the JoinOnKeys fusion it unlocks, so the conversion and the fusion
    rules behind it are priced as one unit.  On decline the group's
    recorded rule firings are rolled back (they did not survive) and a
    single ``<name>.cost_declined`` marker is recorded instead.
    """

    name = "cost_gated_group"

    def __init__(self, name: str, passes: list[PlanPass]):
        self.name = name
        self.passes = passes

    def run(self, plan: PlanNode, ctx: "OptimizerContext") -> PlanNode:
        mark = len(ctx.fired)
        candidate = plan
        for sub in self.passes:
            candidate = sub.run(candidate, ctx)
        if candidate is plan:
            return plan
        speculative = ctx.fired[mark:]
        del ctx.fired[mark:]
        if ctx.choose(self.name, plan, candidate):
            ctx.fired.extend(speculative)
            return candidate
        return plan
