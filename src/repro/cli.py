"""Command-line interface.

Run SQL against a generated synthetic TPC-DS dataset and compare the
baseline and fusion pipelines::

    python -m repro "SELECT count(*) FROM store_sales"
    python -m repro --scale 0.2 --explain "SELECT ..."
    python -m repro --baseline "SELECT ..."         # fusion off
    python -m repro --compare "SELECT ..."          # run both, diff metrics
    python -m repro --cache --repeat 2 "SELECT ..." # cross-query reuse cache

or run the differential fuzzer (see repro.testing)::

    python -m repro fuzz --seed 0 --count 2000

The dataset is regenerated per invocation (it is deterministic, so
results are stable across runs with the same ``--scale``/``--seed``).
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.session import Session
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    DataCorruptionError,
    QueryCancelledError,
    QueryQueueTimeoutError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    WorkerPoolError,
)
from repro.optimizer.config import OptimizerConfig
from repro.tpcds.generator import generate_dataset

#: Process exit codes per error family, most specific class first.
#: 0 = success, 1 = generic/user error (syntax, binding, execution),
#: 2 = --compare disagreement; service-boundary errors get distinct
#: codes so ``repro serve`` callers (and the taxonomy tests) can
#: script against them.
_EXIT_CODES: list[tuple[type[BaseException], int]] = [
    (QueryTimeoutError, 3),
    (QueryCancelledError, 4),
    (ResourceExhaustedError, 5),
    (DataCorruptionError, 6),
    (AdmissionRejectedError, 7),
    (QueryQueueTimeoutError, 8),
    (CircuitOpenError, 9),
    (WorkerPoolError, 10),
]


def exit_code_for(exc: BaseException) -> int:
    """Map an error to the CLI's exit code (generic ReproError -> 1)."""
    for klass, code in _EXIT_CODES:
        if isinstance(exc, klass):
            return code
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run SQL on a synthetic TPC-DS dataset with/without query fusion.",
    )
    parser.add_argument("sql", help="the SQL query to run")
    parser.add_argument("--scale", type=float, default=0.1, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--baseline", action="store_true", help="disable the fusion rules"
    )
    parser.add_argument(
        "--compare", action="store_true", help="run both pipelines and compare"
    )
    parser.add_argument(
        "--explain", action="store_true", help="print the optimized plan"
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="max rows to print (default 20)"
    )
    parser.add_argument(
        "--engine",
        choices=("row", "batch", "compiled"),
        default="batch",
        help="execution backend: vectorized 'batch' (default), 'row', or "
        "'compiled' (fuses each scan→filter→project→aggregate pipeline "
        "into one generated kernel; see --vectors)",
    )
    parser.add_argument(
        "--vectors",
        choices=("python", "numpy"),
        default="numpy",
        help="vector representation for --engine compiled: 'numpy' "
        "(default; falls back to 'python' without NumPy) or 'python' "
        "(bit-identical to the batch engine)",
    )
    parser.add_argument(
        "--batch-rows",
        type=int,
        default=1024,
        help="rows per block for the batch and compiled engines (default 1024)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-operator/per-pipeline wall-time breakdown",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the cross-query subplan result cache",
    )
    parser.add_argument(
        "--cache-budget-mb",
        type=float,
        default=64.0,
        help="plan-cache byte budget in MiB (default 64)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the query N times in the same session "
        "(shows cache replay metrics with --cache)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="chaos: fraction of chunk-read sites that fail transiently "
        "(deterministic per --fault-seed; default 0 = no faults)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed for the fault injector and retry jitter (default 7)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max retries of a transiently failing chunk read "
        "(0 surfaces the first fault; default 3)",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-query deadline in milliseconds (default: none)",
    )
    parser.add_argument(
        "--max-spool-rows",
        type=int,
        default=None,
        help="row budget for any materialized intermediate (default: none)",
    )
    parser.add_argument(
        "--max-state-rows",
        type=int,
        default=None,
        help="budget for resident operator state in rows (default: none)",
    )
    parser.add_argument(
        "--validate-plans",
        action="store_true",
        help="run the plan invariant validator after every optimizer rule",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fragment worker processes: >1 cuts the plan into "
        "partition-parallel pipeline fragments dispatched to a "
        "persistent pool (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-shards",
        type=int,
        default=1,
        help="plan-cache shard count (>1 makes populate/replay "
        "concurrency-safe per shard; default 1 = monolithic)",
    )
    parser.add_argument(
        "--io-latency-ms",
        type=float,
        default=0.0,
        help="simulated per-partition object-store read latency in ms "
        "(models the S3 regime where parallel fragments overlap I/O "
        "waits; default 0)",
    )
    parser.add_argument(
        "--cost-based",
        action="store_true",
        help="cost-based rewrite selection: price fusion candidates, "
        "semi-join conversion, join order, and cache-populate "
        "placement (bytes scanned + rows processed) instead of firing "
        "on the heuristics alone",
    )
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing: seeded random queries checked "
        "across {row,batch,compiled-python,compiled-numpy} x {fusion on,off} "
        "x {cache cold,warm} with the plan invariant validator on.",
    )
    parser.add_argument("--seed", type=int, default=0, help="query-generator seed")
    parser.add_argument("--count", type=int, default=200, help="queries to run")
    parser.add_argument(
        "--scale", type=float, default=0.01, help="dataset scale factor"
    )
    parser.add_argument(
        "--data-seed", type=int, default=7, help="dataset generator seed"
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip delta-debugging minimization of failing queries",
    )
    parser.add_argument(
        "--no-analysis",
        action="store_true",
        help="disable the static-analysis oracle (per-cell check of "
        "derived column facts against actual rows)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true", help="stop at the first divergence"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write a JSON report (incl. minimized failing queries) here",
    )
    parser.add_argument(
        "--progress-every",
        type=int,
        default=500,
        help="print a progress line every N queries (0 = quiet)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[],
        help="add parallel-execution cells to the matrix: each count "
        "> 1 re-runs every query on the batch engine with that many "
        "fragment workers (e.g. --workers 2 4)",
    )
    parser.add_argument(
        "--cost-based",
        action="store_true",
        help="add costed cells to the matrix: the batch engine re-runs "
        "every query with cost-based rewrite selection (fusion on/off "
        "x cache cold/warm); costed plans must agree with heuristic "
        "plans row for row",
    )
    return parser


def fuzz_main(argv: list[str]) -> int:
    """``repro fuzz``: run a campaign, print the report, exit non-zero
    on any divergence."""
    import json

    from repro.testing import run_fuzz

    args = build_fuzz_parser().parse_args(argv)

    def progress(done: int, report) -> None:
        if args.progress_every and done % args.progress_every == 0:
            print(
                f"... {done}/{args.count} "
                f"({len(report.failures)} divergences so far)",
                flush=True,
            )

    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        scale=args.scale,
        data_seed=args.data_seed,
        minimize_failures=not args.no_minimize,
        fail_fast=args.fail_fast,
        analysis=not args.no_analysis,
        workers=tuple(args.workers),
        cost_axis=args.cost_based,
        progress=progress,
    )
    print(report.summary())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


def build_audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit-kernels",
        description="Compile every pipeline kernel the 32-query TPC-DS "
        "workload produces (both vector modes) and statically verify the "
        "generated-code contract with repro.engine.kernel_audit.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.01, help="dataset scale factor"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset generator seed"
    )
    parser.add_argument(
        "--vectors",
        choices=["numpy", "python", "both"],
        default="both",
        help="vector backend(s) to audit (default: both)",
    )
    return parser


def audit_main(argv: list[str]) -> int:
    """``repro audit-kernels``: run the full workload on the compiled
    engine with the kernel auditor armed; every synthesized kernel must
    satisfy the static contract.  Exits non-zero on the first violation
    (or any query failure)."""
    from repro.engine import compiled
    from repro.tpcds.queries import WORKLOAD_QUERIES

    args = build_audit_parser().parse_args(argv)
    store = generate_dataset(scale=args.scale, seed=args.seed)
    modes = ["numpy", "python"] if args.vectors == "both" else [args.vectors]
    failures = 0
    for vectors in modes:
        # Force genuine recompiles: a kernel served from the cross-
        # context cache skips synthesis and would dodge the audit.
        compiled._KERNEL_CACHE.clear()
        compiled._CODE_CACHE.clear()
        session = Session(
            store,
            OptimizerConfig(
                engine="compiled", vectors=vectors, validate_plans=True
            ),
        )
        audited = 0
        for name, sql in WORKLOAD_QUERIES.items():
            try:
                result = session.execute(sql)
            except ReproError as exc:
                failures += 1
                print(f"FAIL {name} [{vectors}]: {type(exc).__name__}: {exc}")
                continue
            audited += result.metrics.kernels_audited
        print(
            f"vectors={vectors}: {len(WORKLOAD_QUERIES)} queries, "
            f"{audited} kernels audited"
        )
        if not audited:
            failures += 1
            print(
                f"FAIL [{vectors}]: no kernels were audited — the compiled "
                "engine did not synthesize any pipelines"
            )
    return 1 if failures else 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Spin up the multi-tenant query service over a "
        "generated dataset, drive it with a concurrent dashboard-style "
        "workload (optionally with chaos: storage faults and a mid-run "
        "worker SIGKILL), verify every result byte-for-byte against a "
        "serial baseline, and print a JSON report.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="dataset scale factor"
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    parser.add_argument(
        "--per-client", type=int, default=8, help="queries per client"
    )
    parser.add_argument(
        "--num-queries",
        type=int,
        default=8,
        help="distinct workload queries to draw from (overlap drives "
        "shared execution; default 8)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=4, help="service dispatcher threads"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="fragment worker processes shared by the service (default 2)",
    )
    parser.add_argument(
        "--engine", choices=("row", "batch", "compiled"), default="batch"
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="chaos: transient-fault rate on chunk reads (default 0)",
    )
    parser.add_argument(
        "--kill-worker-after",
        type=int,
        default=None,
        help="SIGKILL one live fragment worker after N completed "
        "queries (default: no kill)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="admission queue bound"
    )
    parser.add_argument(
        "--queue-timeout-ms",
        type=float,
        default=30_000.0,
        help="max queue wait before QueryQueueTimeoutError (default 30s)",
    )
    parser.add_argument(
        "--query-timeout-ms",
        type=float,
        default=None,
        help="admission-to-completion deadline per query (default: none)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=2,
        help="number of synthetic tenants to spread clients across",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here too"
    )
    return parser


def serve_main(argv: list[str]) -> int:
    """``repro serve``: run the service under concurrent load and
    report.  Exits non-zero if any result diverged from the serial
    baseline (wrong results are never acceptable, degraded or not)."""
    import json

    from repro.server import QueryService, ServiceConfig, run_load, serial_baseline
    from repro.tpcds.queries import WORKLOAD_QUERIES

    args = build_serve_parser().parse_args(argv)
    store = generate_dataset(scale=args.scale, seed=args.seed)
    queries = list(WORKLOAD_QUERIES.values())[: args.num_queries]
    baseline = serial_baseline(store, queries, engine="batch")
    base = OptimizerConfig(
        engine=args.engine,
        enable_plan_cache=True,
        cache_shards=4,
        workers=args.workers,
        fault_rate=args.fault_rate,
        fault_seed=args.seed,
    )
    config = ServiceConfig(
        base=base,
        dispatchers=args.dispatchers,
        max_queue_depth=args.queue_depth,
        queue_timeout_ms=args.queue_timeout_ms,
        query_timeout_ms=args.query_timeout_ms,
    )
    tenants = tuple(f"tenant-{i}" for i in range(max(1, args.tenants)))
    with QueryService(store, config) as service:
        report = run_load(
            service,
            queries,
            baseline,
            clients=args.clients,
            per_client=args.per_client,
            seed=args.seed,
            tenants=tenants,
            kill_worker_after=args.kill_worker_after,
        )
    payload = report.as_dict()
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    return 1 if report.wrong_results else 0


def _print_result(result, limit: int, explain: bool) -> None:
    if explain:
        print(result.explain())
        print()
    print("\t".join(result.columns))
    for row in result.rows[:limit]:
        print("\t".join("NULL" if v is None else str(v) for v in row))
    if len(result.rows) > limit:
        print(f"... ({len(result.rows) - limit} more rows)")
    print(f"-- {result.metrics.summary()}")
    if result.fired_rules:
        print(f"-- rules fired: {', '.join(sorted(set(result.fired_rules)))}")
    if result.metrics.operator_times:
        print(result.metrics.profile_report())


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "audit-kernels":
        return audit_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    store = generate_dataset(scale=args.scale, seed=args.seed)

    engine_opts = {
        "engine": args.engine,
        "vectors": args.vectors,
        "profile": args.profile,
        "batch_rows": args.batch_rows,
        "enable_plan_cache": args.cache,
        "cache_budget_mb": args.cache_budget_mb,
        "fault_rate": args.fault_rate,
        "fault_seed": args.fault_seed,
        "max_retries": args.retries,
        "timeout_ms": args.timeout_ms,
        "max_spool_rows": args.max_spool_rows,
        "max_state_rows": args.max_state_rows,
        "validate_plans": args.validate_plans,
        "workers": args.workers,
        "cache_shards": args.cache_shards,
        "io_latency_ms": args.io_latency_ms,
        "cost_based": args.cost_based,
    }
    try:
        if args.compare:
            baseline = Session(
                store, OptimizerConfig(enable_fusion=False, **engine_opts)
            )
            fused = Session(store, OptimizerConfig(enable_fusion=True, **engine_opts))
            base_result = baseline.execute(args.sql)
            fused_result = fused.execute(args.sql)
            if base_result.sorted_rows() != fused_result.sorted_rows():
                print("ERROR: pipelines disagree on results", file=sys.stderr)
                return 2
            print("== fusion result ==")
            _print_result(fused_result, args.limit, args.explain)
            base_m, fused_m = base_result.metrics, fused_result.metrics
            speedup = base_m.wall_time_s / max(fused_m.wall_time_s, 1e-9)
            fraction = fused_m.bytes_scanned / max(base_m.bytes_scanned, 1e-9)
            print()
            print("== baseline vs fusion ==")
            print(
                f"latency : {base_m.wall_time_s*1000:.1f}ms -> "
                f"{fused_m.wall_time_s*1000:.1f}ms ({speedup:.2f}x)"
            )
            print(
                f"scanned : {base_m.bytes_scanned/1024:.1f}KiB -> "
                f"{fused_m.bytes_scanned/1024:.1f}KiB ({fraction*100:.0f}% of baseline)"
            )
            return 0

        config = OptimizerConfig(enable_fusion=not args.baseline, **engine_opts)
        with Session(store, config) as session:
            result = session.execute(args.sql)
            _print_result(result, args.limit, args.explain)
            for run in range(2, args.repeat + 1):
                result = session.execute(args.sql)
                print(f"-- run {run}: {result.metrics.summary()}")
            if session.plan_cache is not None and args.repeat > 1:
                print(f"-- cache: {session.plan_cache.summary()}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
