"""Workload runner: execute the query suite and summarize, paper-style.

The paper's headline workload numbers are (a) total execution time
improvement across all queries and (b) mean improvement restricted to
queries whose plans changed.  :func:`compare_workloads` computes both
for any pair of sessions (typically baseline vs fusion), asserting
result equivalence query by query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.session import Session
from repro.tpcds.queries import WORKLOAD_QUERIES

#: Rule names that mark a plan as "changed" by the paper's techniques.
FUSION_RULE_NAMES = frozenset(
    {
        "groupby_join_to_window",
        "join_on_keys",
        "union_all_fusion",
        "union_all_on_join",
    }
)


@dataclass
class QueryComparison:
    """Per-query outcome of a baseline/candidate comparison."""

    name: str
    baseline_seconds: float
    candidate_seconds: float
    baseline_bytes: float
    candidate_bytes: float
    plan_changed: bool

    @property
    def speedup(self) -> float:
        if self.candidate_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.candidate_seconds

    @property
    def improvement_percent(self) -> float:
        if self.baseline_seconds <= 0:
            return 0.0
        return (1.0 - self.candidate_seconds / self.baseline_seconds) * 100.0


@dataclass
class WorkloadReport:
    """Aggregate of a workload comparison (the §V text numbers)."""

    queries: list[QueryComparison] = field(default_factory=list)

    @property
    def total_improvement_percent(self) -> float:
        baseline = sum(q.baseline_seconds for q in self.queries)
        candidate = sum(q.candidate_seconds for q in self.queries)
        if baseline <= 0:
            return 0.0
        return (1.0 - candidate / baseline) * 100.0

    @property
    def changed(self) -> list[QueryComparison]:
        return [q for q in self.queries if q.plan_changed]

    @property
    def changed_mean_improvement_percent(self) -> float:
        changed = self.changed
        if not changed:
            return 0.0
        return sum(q.improvement_percent for q in changed) / len(changed)

    @property
    def best_speedup(self) -> float:
        return max((q.speedup for q in self.changed), default=1.0)

    def summary(self) -> str:
        return (
            f"{len(self.queries)} queries, {len(self.changed)} changed plans; "
            f"total improvement {self.total_improvement_percent:.1f}%, "
            f"changed-only mean {self.changed_mean_improvement_percent:.1f}%, "
            f"best {self.best_speedup:.2f}x"
        )


def compare_workloads(
    baseline: Session,
    candidate: Session,
    queries: dict[str, str] | None = None,
) -> WorkloadReport:
    """Run every query under both sessions and summarize.

    Raises :class:`AssertionError` if any query's results differ — a
    performance comparison between non-equivalent plans is meaningless.
    """
    suite = queries if queries is not None else WORKLOAD_QUERIES
    report = WorkloadReport()
    for name, sql in suite.items():
        base = baseline.execute(sql)
        cand = candidate.execute(sql)
        assert base.sorted_rows() == cand.sorted_rows(), (
            f"{name}: sessions disagree on results"
        )
        report.queries.append(
            QueryComparison(
                name=name,
                baseline_seconds=base.metrics.wall_time_s,
                candidate_seconds=cand.metrics.wall_time_s,
                baseline_bytes=base.metrics.bytes_scanned,
                candidate_bytes=cand.metrics.bytes_scanned,
                plan_changed=bool(FUSION_RULE_NAMES & set(cand.fired_rules)),
            )
        )
    return report
