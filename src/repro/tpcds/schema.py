"""TPC-DS schema subset.

Table definitions for the tables exercised by the paper's studied
queries (Q01, Q09, Q23, Q28, Q30, Q65, Q88, Q95) and the proxy
workload.  As in the paper's experimental setup, the seven largest
tables (store_sales, store_returns, catalog_sales, catalog_returns,
web_sales, web_returns, inventory) are partitioned by their date
surrogate key; the remaining tables are unpartitioned.

Column subsets follow the real TPC-DS column names and types so the
query texts read like the benchmark's own.
"""

from __future__ import annotations

from repro.algebra.types import DataType as T
from repro.catalog.catalog import ColumnDef, TableDef

_I = T.INTEGER
_D = T.DOUBLE
_S = T.STRING


def _cols(*specs: tuple) -> tuple[ColumnDef, ...]:
    out = []
    for spec in specs:
        name, dtype = spec[0], spec[1]
        avg = spec[2] if len(spec) > 2 else None
        out.append(ColumnDef(name, dtype, avg))
    return tuple(out)


DATE_DIM = TableDef(
    "date_dim",
    _cols(
        ("d_date_sk", _I),
        ("d_year", _I),
        ("d_moy", _I),
        ("d_dom", _I),
        ("d_month_seq", _I),
        ("d_day_name", _S, 8.0),
    ),
    primary_key=("d_date_sk",),
)

TIME_DIM = TableDef(
    "time_dim",
    _cols(("t_time_sk", _I), ("t_hour", _I), ("t_minute", _I)),
    primary_key=("t_time_sk",),
)

ITEM = TableDef(
    "item",
    _cols(
        ("i_item_sk", _I),
        ("i_item_id", _S, 16.0),
        ("i_item_desc", _S, 40.0),
        ("i_brand_id", _I),
        ("i_brand", _S, 16.0),
        ("i_category_id", _I),
        ("i_category", _S, 10.0),
        ("i_size", _S, 4.0),
        ("i_color", _S, 8.0),
        ("i_current_price", _D),
        ("i_manufact_id", _I),
    ),
    primary_key=("i_item_sk",),
)

STORE = TableDef(
    "store",
    _cols(
        ("s_store_sk", _I),
        ("s_store_id", _S, 16.0),
        ("s_store_name", _S, 10.0),
        ("s_state", _S, 2.0),
        ("s_city", _S, 10.0),
    ),
    primary_key=("s_store_sk",),
)

CUSTOMER = TableDef(
    "customer",
    _cols(
        ("c_customer_sk", _I),
        ("c_customer_id", _S, 16.0),
        ("c_first_name", _S, 10.0),
        ("c_last_name", _S, 12.0),
        ("c_current_addr_sk", _I),
    ),
    primary_key=("c_customer_sk",),
)

CUSTOMER_ADDRESS = TableDef(
    "customer_address",
    _cols(
        ("ca_address_sk", _I),
        ("ca_state", _S, 2.0),
        ("ca_city", _S, 10.0),
        ("ca_country", _S, 13.0),
    ),
    primary_key=("ca_address_sk",),
)

HOUSEHOLD_DEMOGRAPHICS = TableDef(
    "household_demographics",
    _cols(("hd_demo_sk", _I), ("hd_dep_count", _I), ("hd_vehicle_count", _I)),
    primary_key=("hd_demo_sk",),
)

WEB_SITE = TableDef(
    "web_site",
    _cols(("web_site_sk", _I), ("web_site_id", _S, 16.0), ("web_company_name", _S, 10.0)),
    primary_key=("web_site_sk",),
)

WAREHOUSE = TableDef(
    "warehouse",
    _cols(("w_warehouse_sk", _I), ("w_warehouse_name", _S, 16.0), ("w_state", _S, 2.0)),
    primary_key=("w_warehouse_sk",),
)

REASON = TableDef(
    "reason",
    _cols(("r_reason_sk", _I), ("r_reason_desc", _S, 20.0)),
    primary_key=("r_reason_sk",),
)

STORE_SALES = TableDef(
    "store_sales",
    _cols(
        ("ss_sold_date_sk", _I),
        ("ss_sold_time_sk", _I),
        ("ss_item_sk", _I),
        ("ss_customer_sk", _I),
        ("ss_hdemo_sk", _I),
        ("ss_addr_sk", _I),
        ("ss_store_sk", _I),
        ("ss_ticket_number", _I),
        ("ss_quantity", _I),
        ("ss_wholesale_cost", _D),
        ("ss_list_price", _D),
        ("ss_sales_price", _D),
        ("ss_ext_discount_amt", _D),
        ("ss_ext_sales_price", _D),
        ("ss_coupon_amt", _D),
        ("ss_net_profit", _D),
    ),
    partition_column="ss_sold_date_sk",
)

STORE_RETURNS = TableDef(
    "store_returns",
    _cols(
        ("sr_returned_date_sk", _I),
        ("sr_item_sk", _I),
        ("sr_customer_sk", _I),
        ("sr_store_sk", _I),
        ("sr_ticket_number", _I),
        ("sr_return_quantity", _I),
        ("sr_return_amt", _D),
        ("sr_fee", _D),
    ),
    partition_column="sr_returned_date_sk",
)

CATALOG_SALES = TableDef(
    "catalog_sales",
    _cols(
        ("cs_sold_date_sk", _I),
        ("cs_item_sk", _I),
        ("cs_bill_customer_sk", _I),
        ("cs_quantity", _I),
        ("cs_list_price", _D),
        ("cs_sales_price", _D),
        ("cs_ext_discount_amt", _D),
    ),
    partition_column="cs_sold_date_sk",
)

CATALOG_RETURNS = TableDef(
    "catalog_returns",
    _cols(
        ("cr_returned_date_sk", _I),
        ("cr_item_sk", _I),
        ("cr_order_number", _I),
        ("cr_returning_customer_sk", _I),
        ("cr_return_amount", _D),
    ),
    partition_column="cr_returned_date_sk",
)

WEB_SALES = TableDef(
    "web_sales",
    _cols(
        ("ws_sold_date_sk", _I),
        ("ws_item_sk", _I),
        ("ws_bill_customer_sk", _I),
        ("ws_quantity", _I),
        ("ws_list_price", _D),
        ("ws_sales_price", _D),
        ("ws_order_number", _I),
        ("ws_warehouse_sk", _I),
        ("ws_ship_date_sk", _I),
        ("ws_ship_addr_sk", _I),
        ("ws_web_site_sk", _I),
        ("ws_ext_ship_cost", _D),
        ("ws_net_profit", _D),
    ),
    partition_column="ws_sold_date_sk",
)

WEB_RETURNS = TableDef(
    "web_returns",
    _cols(
        ("wr_returned_date_sk", _I),
        ("wr_item_sk", _I),
        ("wr_order_number", _I),
        ("wr_returning_customer_sk", _I),
        ("wr_returning_addr_sk", _I),
        ("wr_return_amt", _D),
    ),
    partition_column="wr_returned_date_sk",
)

INVENTORY = TableDef(
    "inventory",
    _cols(
        ("inv_date_sk", _I),
        ("inv_item_sk", _I),
        ("inv_warehouse_sk", _I),
        ("inv_quantity_on_hand", _I),
    ),
    partition_column="inv_date_sk",
)

#: All tables, in generation order (dimensions before facts).
ALL_TABLES: tuple[TableDef, ...] = (
    DATE_DIM,
    TIME_DIM,
    ITEM,
    STORE,
    CUSTOMER,
    CUSTOMER_ADDRESS,
    HOUSEHOLD_DEMOGRAPHICS,
    WEB_SITE,
    WAREHOUSE,
    REASON,
    STORE_SALES,
    STORE_RETURNS,
    CATALOG_SALES,
    CATALOG_RETURNS,
    WEB_SALES,
    WEB_RETURNS,
    INVENTORY,
)

#: The paper partitions "the largest 7 tables" by date columns.
PARTITIONED_TABLES = tuple(t.name for t in ALL_TABLES if t.partition_column is not None)
