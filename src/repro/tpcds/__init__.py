"""TPC-DS substrate: schema, synthetic generator, queries, workload."""

from repro.tpcds.generator import generate_dataset
from repro.tpcds.queries import FILLER_QUERIES, STUDIED_QUERIES, WORKLOAD_QUERIES
from repro.tpcds.schema import ALL_TABLES, PARTITIONED_TABLES
from repro.tpcds.workload import WorkloadReport, compare_workloads

__all__ = [
    "generate_dataset",
    "ALL_TABLES",
    "PARTITIONED_TABLES",
    "STUDIED_QUERIES",
    "FILLER_QUERIES",
    "WORKLOAD_QUERIES",
    "compare_workloads",
    "WorkloadReport",
]
