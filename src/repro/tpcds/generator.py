"""Deterministic synthetic TPC-DS-shaped data generator.

Stands in for ``dsdgen`` (the paper uses TPC-DS at scale factor 3 TB;
see DESIGN.md §4 for the substitution argument).  The generator is:

* **seeded** — the same ``(scale, seed)`` always produces identical
  data, so tests and benchmarks are reproducible;
* **schema-faithful** — real TPC-DS column names, surrogate-key joins,
  `d_month_seq = (year-1900)*12 + (month-1)` (so Jan-2000 is 1200,
  matching the constants real TPC-DS queries use);
* **distribution-aware** — the selective columns the studied queries
  filter on (`d_year`, `d_month_seq`, `ss_quantity` buckets, store
  states, item sizes/categories, shared `ws_order_number` across
  warehouses) have domains that give those predicates non-trivial
  selectivity;
* **partitioned** — fact rows are generated sorted by their date key
  and split into range partitions, enabling partition pruning.
"""

from __future__ import annotations

import datetime
import math

import numpy as np

from repro.storage.columnar import Store, StoredTable
from repro.tpcds import schema as S

#: First date in the calendar (real TPC-DS starts its surrogate keys
#: near this value; we keep the same magnitude for familiarity).
DATE_SK_BASE = 2450816
FIRST_DATE = datetime.date(1998, 1, 1)
LAST_DATE = datetime.date(2002, 12, 31)

_STATES = ["TN", "GA", "CA", "TX", "OH", "WA", "NY", "IL"]
_CATEGORIES = [
    "Music", "Books", "Electronics", "Home", "Sports",
    "Shoes", "Jewelry", "Women", "Men", "Children",
]
_SIZES = ["small", "medium", "large", "extra large", "petite", "N/A"]
_COLORS = [
    "red", "blue", "green", "black", "white", "yellow",
    "purple", "orange", "brown", "pink",
]
_DAY_NAMES = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]
_FIRST_NAMES = ["John", "Mary", "James", "Linda", "Robert", "Susan", "David", "Karen"]
_LAST_NAMES = ["Smith", "Jones", "Brown", "Davis", "Wilson", "Taylor", "Clark", "Lewis"]
_REASONS = [
    "Package was damaged", "Wrong size", "Changed mind", "Found better price",
    "Gift exchange", "Arrived late", "Quality issue", "Duplicate order",
    "Not as described", "No reason given",
]


def date_sk_for(year: int, month: int, day: int) -> int:
    """Surrogate key of a calendar date."""
    return DATE_SK_BASE + (datetime.date(year, month, day) - FIRST_DATE).days


def month_seq(year: int, month: int) -> int:
    """TPC-DS d_month_seq convention: Jan-2000 == 1200."""
    return (year - 1900) * 12 + (month - 1)


class _TableSizes:
    """Row counts per table at a given scale."""

    def __init__(self, scale: float):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.item = max(200, int(1000 * scale))
        self.customer = max(400, int(2000 * scale))
        self.customer_address = max(200, int(1000 * scale))
        self.store = max(6, int(12 * math.sqrt(scale)))
        self.web_site = max(4, int(8 * math.sqrt(scale)))
        self.warehouse = 5
        self.household_demographics = 120
        self.reason = len(_REASONS)
        self.store_sales = int(40_000 * scale)
        self.store_returns = int(8_000 * scale)
        self.catalog_sales = int(20_000 * scale)
        self.catalog_returns = int(4_000 * scale)
        self.web_sales = int(20_000 * scale)
        self.web_returns = int(4_000 * scale)
        self.inventory = int(10_000 * scale)

    def partition_rows(self, total: int) -> int:
        """Rows per fact partition: roughly 32 partitions per table."""
        return max(256, total // 32)


def _money(rng: np.random.Generator, n: int, low: float, high: float) -> list[float]:
    return [round(float(v), 2) for v in rng.uniform(low, high, n)]


def _with_nulls(rng: np.random.Generator, values: list, fraction: float) -> list:
    if fraction <= 0:
        return list(values)
    mask = rng.random(len(values)) < fraction
    return [None if m else v for v, m in zip(values, mask)]


def _pick(rng: np.random.Generator, options: list, n: int) -> list:
    idx = rng.integers(0, len(options), n)
    return [options[i] for i in idx]


def generate_dataset(scale: float = 1.0, seed: int = 7) -> Store:
    """Generate the full dataset into an in-memory :class:`Store`."""
    sizes = _TableSizes(scale)
    store = Store()

    # --- calendar dimensions -------------------------------------------------
    days = (LAST_DATE - FIRST_DATE).days + 1
    dates = [FIRST_DATE + datetime.timedelta(days=i) for i in range(days)]
    store.put(
        StoredTable.from_columns(
            S.DATE_DIM,
            {
                "d_date_sk": [DATE_SK_BASE + i for i in range(days)],
                "d_year": [d.year for d in dates],
                "d_moy": [d.month for d in dates],
                "d_dom": [d.day for d in dates],
                "d_month_seq": [month_seq(d.year, d.month) for d in dates],
                "d_day_name": [_DAY_NAMES[d.weekday()] for d in dates],
            },
        )
    )
    minutes = 24 * 60
    store.put(
        StoredTable.from_columns(
            S.TIME_DIM,
            {
                "t_time_sk": list(range(minutes)),
                "t_hour": [i // 60 for i in range(minutes)],
                "t_minute": [i % 60 for i in range(minutes)],
            },
        )
    )

    # --- entity dimensions ----------------------------------------------------
    rng = np.random.default_rng(seed)
    n = sizes.item
    store.put(
        StoredTable.from_columns(
            S.ITEM,
            {
                "i_item_sk": list(range(1, n + 1)),
                "i_item_id": [f"AAAAAAAA{i:08d}" for i in range(1, n + 1)],
                "i_item_desc": [f"item description {i}" for i in range(1, n + 1)],
                "i_brand_id": [int(v) for v in rng.integers(1, 1000, n)],
                "i_brand": [f"brand#{int(v)}" for v in rng.integers(1, 100, n)],
                "i_category_id": [int(v) for v in rng.integers(1, len(_CATEGORIES) + 1, n)],
                "i_category": _pick(rng, _CATEGORIES, n),
                "i_size": _pick(rng, _SIZES, n),
                "i_color": _pick(rng, _COLORS, n),
                "i_current_price": _money(rng, n, 0.5, 200.0),
                "i_manufact_id": [int(v) for v in rng.integers(1, 100, n)],
            },
        )
    )

    n = sizes.store
    store.put(
        StoredTable.from_columns(
            S.STORE,
            {
                "s_store_sk": list(range(1, n + 1)),
                "s_store_id": [f"S{i:09d}" for i in range(1, n + 1)],
                "s_store_name": [f"store {i}" for i in range(1, n + 1)],
                "s_state": _pick(rng, _STATES, n),
                "s_city": [f"city {int(v)}" for v in rng.integers(1, 30, n)],
            },
        )
    )

    n = sizes.customer_address
    store.put(
        StoredTable.from_columns(
            S.CUSTOMER_ADDRESS,
            {
                "ca_address_sk": list(range(1, n + 1)),
                "ca_state": _pick(rng, _STATES, n),
                "ca_city": [f"city {int(v)}" for v in rng.integers(1, 60, n)],
                "ca_country": ["United States"] * n,
            },
        )
    )

    n = sizes.customer
    store.put(
        StoredTable.from_columns(
            S.CUSTOMER,
            {
                "c_customer_sk": list(range(1, n + 1)),
                "c_customer_id": [f"C{i:09d}" for i in range(1, n + 1)],
                "c_first_name": _pick(rng, _FIRST_NAMES, n),
                "c_last_name": _pick(rng, _LAST_NAMES, n),
                "c_current_addr_sk": [
                    int(v) for v in rng.integers(1, sizes.customer_address + 1, n)
                ],
            },
        )
    )

    n = sizes.household_demographics
    store.put(
        StoredTable.from_columns(
            S.HOUSEHOLD_DEMOGRAPHICS,
            {
                "hd_demo_sk": list(range(1, n + 1)),
                "hd_dep_count": [int(v) for v in rng.integers(0, 10, n)],
                "hd_vehicle_count": [int(v) for v in rng.integers(0, 5, n)],
            },
        )
    )

    n = sizes.web_site
    store.put(
        StoredTable.from_columns(
            S.WEB_SITE,
            {
                "web_site_sk": list(range(1, n + 1)),
                "web_site_id": [f"W{i:09d}" for i in range(1, n + 1)],
                "web_company_name": [f"pri company {i}" for i in range(1, n + 1)],
            },
        )
    )

    n = sizes.warehouse
    store.put(
        StoredTable.from_columns(
            S.WAREHOUSE,
            {
                "w_warehouse_sk": list(range(1, n + 1)),
                "w_warehouse_name": [f"warehouse {i}" for i in range(1, n + 1)],
                "w_state": _pick(rng, _STATES, n),
            },
        )
    )

    store.put(
        StoredTable.from_columns(
            S.REASON,
            {
                "r_reason_sk": list(range(1, sizes.reason + 1)),
                "r_reason_desc": list(_REASONS),
            },
        )
    )

    # --- fact tables ------------------------------------------------------
    def sorted_dates(count: int, gen: np.random.Generator) -> list[int]:
        picks = gen.integers(0, days, count)
        picks.sort()
        return [DATE_SK_BASE + int(v) for v in picks]

    rng = np.random.default_rng(seed + 101)
    n = sizes.store_sales
    ss_dates = sorted_dates(n, rng)
    quantities = [int(v) for v in rng.integers(1, 101, n)]
    list_price = _money(rng, n, 1.0, 200.0)
    sales_price = [round(lp * float(f), 2) for lp, f in zip(list_price, rng.uniform(0.2, 1.0, n))]
    store.put(
        StoredTable.from_columns(
            S.STORE_SALES,
            {
                "ss_sold_date_sk": ss_dates,
                "ss_sold_time_sk": [int(v) for v in rng.integers(0, minutes, n)],
                "ss_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "ss_customer_sk": _with_nulls(
                    rng, [int(v) for v in rng.integers(1, sizes.customer + 1, n)], 0.02
                ),
                "ss_hdemo_sk": _with_nulls(
                    rng,
                    [int(v) for v in rng.integers(1, sizes.household_demographics + 1, n)],
                    0.02,
                ),
                "ss_addr_sk": _with_nulls(
                    rng, [int(v) for v in rng.integers(1, sizes.customer_address + 1, n)], 0.02
                ),
                "ss_store_sk": [int(v) for v in rng.integers(1, sizes.store + 1, n)],
                "ss_ticket_number": list(range(1, n + 1)),
                "ss_quantity": quantities,
                "ss_wholesale_cost": _money(rng, n, 1.0, 100.0),
                "ss_list_price": list_price,
                "ss_sales_price": sales_price,
                "ss_ext_discount_amt": _money(rng, n, 0.0, 1000.0),
                "ss_ext_sales_price": [round(q * sp, 2) for q, sp in zip(quantities, sales_price)],
                "ss_coupon_amt": _money(rng, n, 0.0, 500.0),
                "ss_net_profit": _money(rng, n, -500.0, 1500.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 102)
    n = sizes.store_returns
    store.put(
        StoredTable.from_columns(
            S.STORE_RETURNS,
            {
                "sr_returned_date_sk": sorted_dates(n, rng),
                "sr_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "sr_customer_sk": _with_nulls(
                    rng, [int(v) for v in rng.integers(1, sizes.customer + 1, n)], 0.02
                ),
                "sr_store_sk": [int(v) for v in rng.integers(1, sizes.store + 1, n)],
                "sr_ticket_number": [int(v) for v in rng.integers(1, sizes.store_sales + 1, n)],
                "sr_return_quantity": [int(v) for v in rng.integers(1, 20, n)],
                "sr_return_amt": _money(rng, n, 1.0, 2000.0),
                "sr_fee": _money(rng, n, 0.0, 100.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 103)
    n = sizes.catalog_sales
    cs_qty = [int(v) for v in rng.integers(1, 101, n)]
    store.put(
        StoredTable.from_columns(
            S.CATALOG_SALES,
            {
                "cs_sold_date_sk": sorted_dates(n, rng),
                "cs_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "cs_bill_customer_sk": [int(v) for v in rng.integers(1, sizes.customer + 1, n)],
                "cs_quantity": cs_qty,
                "cs_list_price": _money(rng, n, 1.0, 300.0),
                "cs_sales_price": _money(rng, n, 1.0, 300.0),
                "cs_ext_discount_amt": _money(rng, n, 0.0, 1000.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 104)
    n = sizes.catalog_returns
    store.put(
        StoredTable.from_columns(
            S.CATALOG_RETURNS,
            {
                "cr_returned_date_sk": sorted_dates(n, rng),
                "cr_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "cr_order_number": [int(v) for v in rng.integers(1, max(2, n // 2), n)],
                "cr_returning_customer_sk": [
                    int(v) for v in rng.integers(1, sizes.customer + 1, n)
                ],
                "cr_return_amount": _money(rng, n, 1.0, 2000.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 105)
    n = sizes.web_sales
    n_orders = max(2, n // 3)
    store.put(
        StoredTable.from_columns(
            S.WEB_SALES,
            {
                "ws_sold_date_sk": sorted_dates(n, rng),
                "ws_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "ws_bill_customer_sk": [int(v) for v in rng.integers(1, sizes.customer + 1, n)],
                "ws_quantity": [int(v) for v in rng.integers(1, 101, n)],
                "ws_list_price": _money(rng, n, 1.0, 300.0),
                "ws_sales_price": _money(rng, n, 1.0, 300.0),
                "ws_order_number": [int(v) for v in rng.integers(1, n_orders + 1, n)],
                "ws_warehouse_sk": [int(v) for v in rng.integers(1, sizes.warehouse + 1, n)],
                "ws_ship_date_sk": sorted_dates(n, rng),
                "ws_ship_addr_sk": [int(v) for v in rng.integers(1, sizes.customer_address + 1, n)],
                "ws_web_site_sk": [int(v) for v in rng.integers(1, sizes.web_site + 1, n)],
                "ws_ext_ship_cost": _money(rng, n, 0.0, 500.0),
                "ws_net_profit": _money(rng, n, -500.0, 1500.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 106)
    n = sizes.web_returns
    store.put(
        StoredTable.from_columns(
            S.WEB_RETURNS,
            {
                "wr_returned_date_sk": sorted_dates(n, rng),
                "wr_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "wr_order_number": [int(v) for v in rng.integers(1, n_orders + 1, n)],
                "wr_returning_customer_sk": [
                    int(v) for v in rng.integers(1, sizes.customer + 1, n)
                ],
                "wr_returning_addr_sk": [
                    int(v) for v in rng.integers(1, sizes.customer_address + 1, n)
                ],
                "wr_return_amt": _money(rng, n, 1.0, 2000.0),
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    rng = np.random.default_rng(seed + 107)
    n = sizes.inventory
    store.put(
        StoredTable.from_columns(
            S.INVENTORY,
            {
                "inv_date_sk": sorted_dates(n, rng),
                "inv_item_sk": [int(v) for v in rng.integers(1, sizes.item + 1, n)],
                "inv_warehouse_sk": [int(v) for v in rng.integers(1, sizes.warehouse + 1, n)],
                "inv_quantity_on_hand": [int(v) for v in rng.integers(0, 1000, n)],
            },
            partition_rows=sizes.partition_rows(n),
        )
    )

    return store
