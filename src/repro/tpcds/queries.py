"""TPC-DS query texts.

``STUDIED_QUERIES`` holds the eight queries the paper's evaluation
examines (Q01, Q09, Q23, Q28, Q30, Q65, Q88, Q95), adapted the same
way the paper adapts them for presentation ("a simplified version is"),
to our SQL dialect and synthetic-data parameter ranges:

* Q65 is the paper's own §I variant (the common block appearing twice);
* Q23 and Q95 are the paper's §V.C / §V.D simplified versions;
* Q09/Q28/Q88 keep their bucketed-scalar-aggregate structure with
  bucket boundaries matched to the generator's value ranges;
* Q01/Q30 keep their correlated-average structure.

``FILLER_QUERIES`` are twenty-four representative analytics queries
with no common subexpressions — they complete the 32-query workload
proxy whose role is to reproduce the paper's workload-level dilution
(14% overall vs 60% on changed-plan queries); see DESIGN.md §4,
substitution 3.  The ``x*`` group exercises the wider dialect surface
(LIKE, LEFT JOIN, NOT IN, windows, CASE, scalar functions).
"""

from __future__ import annotations

Q01 = """
WITH customer_total_return AS (
  SELECT sr_customer_sk AS ctr_customer_sk,
         sr_store_sk AS ctr_store_sk,
         sum(sr_return_amt) AS ctr_total_return
  FROM store_returns, date_dim
  WHERE sr_returned_date_sk = d_date_sk
    AND d_year = 2000
  GROUP BY sr_customer_sk, sr_store_sk)
SELECT c_customer_id
FROM customer_total_return ctr1, store, customer
WHERE ctr1.ctr_total_return > (
    SELECT avg(ctr_total_return) * 1.2
    FROM customer_total_return ctr2
    WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
  AND s_store_sk = ctr1.ctr_store_sk
  AND s_state = 'TN'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id
LIMIT 100
"""

_Q09_BUCKET = """
  CASE WHEN (SELECT count(*) FROM store_sales
             WHERE ss_quantity BETWEEN {lo} AND {hi}) > {threshold}
       THEN (SELECT avg(ss_ext_discount_amt) FROM store_sales
             WHERE ss_quantity BETWEEN {lo} AND {hi})
       ELSE (SELECT avg(ss_net_profit) FROM store_sales
             WHERE ss_quantity BETWEEN {lo} AND {hi}) END AS bucket{n}
"""

Q09 = (
    "SELECT "
    + ",".join(
        _Q09_BUCKET.format(lo=1 + 20 * i, hi=20 * (i + 1), threshold=t, n=i + 1)
        for i, t in enumerate((7000, 10000, 6000, 9000, 8000))
    )
    + " FROM reason WHERE r_reason_sk = 1"
)

_Q28_BUCKET = """
  (SELECT avg(ss_list_price) AS b{n}_lp,
          count(ss_list_price) AS b{n}_cnt,
          count(DISTINCT ss_list_price) AS b{n}_cntd
   FROM store_sales
   WHERE ss_quantity BETWEEN {qlo} AND {qhi}
     AND (ss_list_price BETWEEN {lp} AND {lp} + 10
          OR ss_coupon_amt BETWEEN {cp} AND {cp} + 100
          OR ss_wholesale_cost BETWEEN {wc} AND {wc} + 20)) B{n}
"""

Q28 = (
    "SELECT B1.b1_lp, B1.b1_cnt, B1.b1_cntd, B2.b2_lp, B2.b2_cnt, B2.b2_cntd,"
    " B3.b3_lp, B3.b3_cnt, B3.b3_cntd, B4.b4_lp, B4.b4_cnt, B4.b4_cntd,"
    " B5.b5_lp, B5.b5_cnt, B5.b5_cntd, B6.b6_lp, B6.b6_cnt, B6.b6_cntd FROM "
    + ",".join(
        _Q28_BUCKET.format(n=i + 1, qlo=5 * i, qhi=5 * (i + 1), lp=8 + 25 * i,
                           cp=50 + 60 * i, wc=10 + 12 * i)
        for i in range(6)
    )
)

Q23 = """
WITH freq_items AS (
  SELECT ss_item_sk AS item_sk
  FROM store_sales, date_dim
  WHERE ss_sold_date_sk = d_date_sk
    AND d_year = 1999
  GROUP BY ss_item_sk
  HAVING count(*) > 4),
best_customer AS (
  SELECT ss_customer_sk AS cust_sk
  FROM store_sales
  WHERE ss_customer_sk IS NOT NULL
  GROUP BY ss_customer_sk
  HAVING sum(ss_quantity * ss_sales_price) > 30000)
SELECT sum(sales) AS total_sales
FROM (SELECT cs_quantity * cs_list_price AS sales
      FROM catalog_sales, date_dim
      WHERE d_year = 1999
        AND d_moy = 1
        AND cs_sold_date_sk = d_date_sk
        AND cs_item_sk IN (SELECT item_sk FROM freq_items)
        AND cs_bill_customer_sk IN (SELECT cust_sk FROM best_customer)
      UNION ALL
      SELECT ws_quantity * ws_list_price AS sales
      FROM web_sales, date_dim
      WHERE d_year = 1999
        AND d_moy = 1
        AND ws_sold_date_sk = d_date_sk
        AND ws_item_sk IN (SELECT item_sk FROM freq_items)
        AND ws_bill_customer_sk IN (SELECT cust_sk FROM best_customer)) t
"""

Q30 = """
WITH customer_total_return AS (
  SELECT wr_returning_customer_sk AS ctr_customer_sk,
         ca_state AS ctr_state,
         sum(wr_return_amt) AS ctr_total_return
  FROM web_returns, date_dim, customer_address
  WHERE wr_returned_date_sk = d_date_sk
    AND d_year = 2000
    AND wr_returning_addr_sk = ca_address_sk
  GROUP BY wr_returning_customer_sk, ca_state)
SELECT c_customer_id, c_first_name, c_last_name, ctr_total_return
FROM customer_total_return ctr1, customer_address, customer
WHERE ctr1.ctr_total_return > (
    SELECT avg(ctr_total_return) * 1.2
    FROM customer_total_return ctr2
    WHERE ctr1.ctr_state = ctr2.ctr_state)
  AND ca_address_sk = c_current_addr_sk
  AND ca_state = 'GA'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id
LIMIT 100
"""

Q65 = """
SELECT s_store_name, i_item_desc, revenue
FROM store, item,
    (SELECT ss_store_sk, avg(revenue) AS ave
     FROM (SELECT ss_store_sk, ss_item_sk,
                  sum(ss_sales_price) AS revenue
           FROM store_sales, date_dim
           WHERE ss_sold_date_sk = d_date_sk
             AND d_month_seq BETWEEN 1212 AND 1223
           GROUP BY ss_store_sk, ss_item_sk) sa
     GROUP BY ss_store_sk) sb,
    (SELECT ss_store_sk, ss_item_sk,
            sum(ss_sales_price) AS revenue
     FROM store_sales, date_dim
     WHERE ss_sold_date_sk = d_date_sk
       AND d_month_seq BETWEEN 1212 AND 1223
     GROUP BY ss_store_sk, ss_item_sk) sc
WHERE sb.ss_store_sk = sc.ss_store_sk
  AND sc.revenue <= 0.1 * sb.ave
  AND s_store_sk = sc.ss_store_sk
  AND i_item_sk = sc.ss_item_sk
ORDER BY s_store_name, i_item_desc
LIMIT 100
"""

_Q88_BUCKET = """
  (SELECT count(*) AS h{n}
   FROM store_sales, household_demographics, time_dim, store
   WHERE ss_sold_time_sk = t_time_sk
     AND ss_hdemo_sk = hd_demo_sk
     AND ss_store_sk = s_store_sk
     AND t_hour = {hour}
     AND t_minute {cmp} 30
     AND hd_dep_count = 2
     AND s_store_name = 'store 1') s{n}
"""

Q88 = (
    "SELECT s1.h1, s2.h2, s3.h3, s4.h4, s5.h5, s6.h6, s7.h7, s8.h8 FROM "
    + ",".join(
        _Q88_BUCKET.format(n=i + 1, hour=8 + i // 2, cmp=(">=" if i % 2 == 0 else "<"))
        for i in range(8)
    )
)

Q95 = """
WITH ws_wh AS (
  SELECT ws1.ws_order_number AS ws_wh_number
  FROM web_sales ws1, web_sales ws2
  WHERE ws1.ws_order_number = ws2.ws_order_number
    AND ws1.ws_warehouse_sk <> ws2.ws_warehouse_sk)
SELECT count(DISTINCT ws_order_number) AS order_count,
       sum(ws_ext_ship_cost) AS total_shipping_cost,
       sum(ws_net_profit) AS total_net_profit
FROM web_sales, date_dim, customer_address, web_site
WHERE d_year = 1999
  AND ws_ship_date_sk = d_date_sk
  AND ws_ship_addr_sk = ca_address_sk
  AND ca_state = 'TN'
  AND ws_web_site_sk = web_site_sk
  AND ws_order_number IN (SELECT ws_wh_number FROM ws_wh)
  AND ws_order_number IN (SELECT wr_order_number
                          FROM ws_wh
                          JOIN web_returns ON wr_order_number = ws_wh_number)
"""

#: The eight queries the paper's figures and case studies cover.
STUDIED_QUERIES: dict[str, str] = {
    "q01": Q01,
    "q09": Q09,
    "q23": Q23,
    "q28": Q28,
    "q30": Q30,
    "q65": Q65,
    "q88": Q88,
    "q95": Q95,
}

#: Representative queries with no common subexpressions: they keep
#: their plans under the fusion pipeline, diluting the workload-level
#: improvement exactly as the unaffected TPC-DS queries do.
FILLER_QUERIES: dict[str, str] = {
    "w03": """
        SELECT d_year, i_brand_id, i_brand, sum(ss_ext_sales_price) AS sum_agg
        FROM date_dim, store_sales, item
        WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
          AND i_manufact_id = 50 AND d_moy = 11
        GROUP BY d_year, i_brand_id, i_brand
        ORDER BY d_year, sum_agg DESC, i_brand_id
        LIMIT 100
    """,
    "w07": """
        SELECT i_item_id, avg(ss_quantity) AS agg1, avg(ss_list_price) AS agg2,
               avg(ss_coupon_amt) AS agg3, avg(ss_sales_price) AS agg4
        FROM store_sales, date_dim, item
        WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND d_year = 2000
        GROUP BY i_item_id
        ORDER BY i_item_id
        LIMIT 100
    """,
    "w12": """
        SELECT i_category, sum(ws_sales_price * ws_quantity) AS itemrevenue
        FROM web_sales, item, date_dim
        WHERE ws_item_sk = i_item_sk
          AND i_category IN ('Books', 'Music', 'Home')
          AND ws_sold_date_sk = d_date_sk AND d_year = 1999
        GROUP BY i_category
        ORDER BY i_category
    """,
    "w19": """
        SELECT i_brand_id, i_brand, sum(ss_ext_sales_price) AS ext_price
        FROM date_dim, store_sales, item, customer, customer_address, store
        WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
          AND d_moy = 11 AND d_year = 1998
          AND ss_customer_sk = c_customer_sk
          AND c_current_addr_sk = ca_address_sk
          AND ss_store_sk = s_store_sk AND ca_state <> s_state
        GROUP BY i_brand_id, i_brand
        ORDER BY ext_price DESC, i_brand_id
        LIMIT 100
    """,
    "w25": """
        SELECT i_item_id, i_item_desc, s_store_id, s_store_name,
               sum(ss_net_profit) AS store_sales_profit
        FROM store_sales, date_dim, store, item
        WHERE d_moy = 4 AND d_year = 2001 AND d_date_sk = ss_sold_date_sk
          AND ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk
        GROUP BY i_item_id, i_item_desc, s_store_id, s_store_name
        ORDER BY i_item_id, s_store_id
        LIMIT 100
    """,
    "w26": """
        SELECT i_item_id, avg(cs_quantity) AS agg1, avg(cs_list_price) AS agg2,
               avg(cs_sales_price) AS agg3
        FROM catalog_sales, date_dim, item
        WHERE cs_sold_date_sk = d_date_sk AND cs_item_sk = i_item_sk AND d_year = 2000
        GROUP BY i_item_id
        ORDER BY i_item_id
        LIMIT 100
    """,
    "w37": """
        SELECT i_item_id, i_item_desc, i_current_price
        FROM item, inventory, date_dim
        WHERE i_current_price BETWEEN 30 AND 60
          AND inv_item_sk = i_item_sk
          AND d_date_sk = inv_date_sk AND d_year = 2000
          AND i_manufact_id IN (10, 20, 30, 40)
          AND inv_quantity_on_hand BETWEEN 100 AND 500
        GROUP BY i_item_id, i_item_desc, i_current_price
        ORDER BY i_item_id
        LIMIT 100
    """,
    "w42": """
        SELECT d_year, i_category_id, i_category, sum(ss_ext_sales_price) AS total
        FROM date_dim, store_sales, item
        WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
          AND d_moy = 11 AND d_year = 2000
        GROUP BY d_year, i_category_id, i_category
        ORDER BY total DESC, d_year, i_category_id
        LIMIT 100
    """,
    "w43": """
        SELECT s_store_name, s_store_id,
               sum(ss_sales_price) FILTER (WHERE d_day_name = 'Sunday') AS sun_sales,
               sum(ss_sales_price) FILTER (WHERE d_day_name = 'Monday') AS mon_sales,
               sum(ss_sales_price) FILTER (WHERE d_day_name = 'Friday') AS fri_sales
        FROM date_dim, store_sales, store
        WHERE d_date_sk = ss_sold_date_sk AND ss_store_sk = s_store_sk AND d_year = 2000
        GROUP BY s_store_name, s_store_id
        ORDER BY s_store_name
        LIMIT 100
    """,
    "w45": """
        SELECT ca_state, sum(ws_sales_price) AS total
        FROM web_sales, customer, customer_address, date_dim
        WHERE ws_bill_customer_sk = c_customer_sk
          AND c_current_addr_sk = ca_address_sk
          AND ws_sold_date_sk = d_date_sk AND d_year = 2001
        GROUP BY ca_state
        ORDER BY total DESC
        LIMIT 100
    """,
    "w52": """
        SELECT d_year, i_brand_id, i_brand, sum(ss_ext_sales_price) AS ext_price
        FROM date_dim, store_sales, item
        WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
          AND i_category = 'Music' AND d_moy = 12 AND d_year = 1998
        GROUP BY d_year, i_brand_id, i_brand
        ORDER BY d_year, ext_price DESC, i_brand_id
        LIMIT 100
    """,
    "w55": """
        SELECT i_brand_id, i_brand, sum(ss_ext_sales_price) AS ext_price
        FROM date_dim, store_sales, item
        WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
          AND i_manufact_id = 28 AND d_moy = 11
        GROUP BY i_brand_id, i_brand
        ORDER BY ext_price DESC, i_brand_id
        LIMIT 100
    """,
    "w62": """
        SELECT w_warehouse_name, web_site_id, count(*) AS shipments
        FROM web_sales, warehouse, web_site, date_dim
        WHERE ws_warehouse_sk = w_warehouse_sk
          AND ws_web_site_sk = web_site_sk
          AND ws_ship_date_sk = d_date_sk AND d_year = 2000
        GROUP BY w_warehouse_name, web_site_id
        ORDER BY w_warehouse_name, web_site_id
        LIMIT 100
    """,
    "w82": """
        SELECT i_item_id, i_item_desc, i_current_price
        FROM item, inventory, date_dim, store_sales
        WHERE i_current_price BETWEEN 50 AND 80
          AND inv_item_sk = i_item_sk
          AND d_date_sk = inv_date_sk AND d_year = 1999
          AND ss_item_sk = i_item_sk
          AND inv_quantity_on_hand BETWEEN 200 AND 800
        GROUP BY i_item_id, i_item_desc, i_current_price
        ORDER BY i_item_id
        LIMIT 100
    """,
    "w96": """
        SELECT count(*) AS cnt
        FROM store_sales, household_demographics, time_dim, store
        WHERE ss_sold_time_sk = t_time_sk
          AND ss_hdemo_sk = hd_demo_sk
          AND ss_store_sk = s_store_sk
          AND t_hour = 20 AND t_minute >= 30
          AND hd_dep_count = 7
          AND s_store_name = 'store 2'
    """,
    "w98": """
        SELECT i_item_desc, i_category, i_item_id,
               sum(ss_ext_sales_price) AS itemrevenue
        FROM store_sales, item, date_dim
        WHERE ss_item_sk = i_item_sk
          AND i_category IN ('Sports', 'Books', 'Men')
          AND ss_sold_date_sk = d_date_sk
          AND d_year = 1999 AND d_moy BETWEEN 2 AND 4
        GROUP BY i_item_desc, i_category, i_item_id
        ORDER BY i_category, i_item_id
        LIMIT 100
    """,
    "x01": """
        SELECT c_last_name, count(*) AS returns_cnt
        FROM customer, store_returns
        WHERE c_customer_sk = sr_customer_sk
          AND c_first_name LIKE 'J%'
        GROUP BY c_last_name
        ORDER BY returns_cnt DESC, c_last_name
        LIMIT 50
    """,
    "x02": """
        SELECT s_store_name, coalesce(sum(sr_return_amt), 0.0) AS returned
        FROM store LEFT JOIN store_returns ON s_store_sk = sr_store_sk
        GROUP BY s_store_name
        ORDER BY s_store_name
    """,
    "x03": """
        SELECT i_category,
               CASE WHEN avg(i_current_price) > 100 THEN 'premium'
                    ELSE 'value' END AS tier,
               count(*) AS items
        FROM item
        GROUP BY i_category
        ORDER BY i_category
    """,
    "x04": """
        SELECT c_customer_id
        FROM customer
        WHERE c_customer_sk NOT IN (SELECT wr_returning_customer_sk FROM web_returns)
        ORDER BY c_customer_id
        LIMIT 25
    """,
    "x05": """
        SELECT ss_store_sk, ss_ticket_number, ss_net_profit,
               sum(ss_net_profit) OVER (PARTITION BY ss_store_sk) AS store_profit
        FROM store_sales
        WHERE ss_sold_date_sk = 2450816
        ORDER BY ss_store_sk, ss_ticket_number
        LIMIT 100
    """,
    "x06": """
        SELECT d_year, count(DISTINCT ws_order_number) AS orders,
               sum(ws_net_profit) AS profit
        FROM web_sales, date_dim
        WHERE ws_sold_date_sk = d_date_sk
        GROUP BY d_year
        ORDER BY d_year
    """,
    "x07": """
        SELECT upper(s_state) AS state, min(s_store_sk) AS first_store
        FROM store
        WHERE s_store_name <> 'store 999'
        GROUP BY upper(s_state)
        ORDER BY state
    """,
    "x08": """
        SELECT hd_dep_count, avg(ss_quantity) AS avg_qty
        FROM store_sales JOIN household_demographics ON ss_hdemo_sk = hd_demo_sk
        WHERE ss_sold_time_sk BETWEEN 480 AND 1020
        GROUP BY hd_dep_count
        HAVING count(*) > 5
        ORDER BY hd_dep_count
    """,
}

#: The full 32-query workload proxy (see DESIGN.md §4).
WORKLOAD_QUERIES: dict[str, str] = {**STUDIED_QUERIES, **FILLER_QUERIES}
