"""SQL frontend: lexer, parser, AST, and binder."""

from repro.sql.binder import Binder, BoundQuery
from repro.sql.parser import parse

__all__ = ["parse", "Binder", "BoundQuery"]
