"""Binder: SQL AST → logical algebra.

Responsibilities:

* name resolution against the catalog, with proper scoping (derived
  tables, aliases, correlated references into enclosing blocks);
* **CTE inlining** — every reference to a WITH-defined name expands
  into a fresh copy of its subtree (fresh column ids).  This models
  Athena's streaming engine, where common table expressions are *not*
  spooled and a CTE used twice is evaluated twice — the inefficiency
  the paper's fusion rules remove;
* subquery lowering: ``IN (SELECT …)`` becomes a semi-join (anti-join
  when negated), ``EXISTS`` a semi-join, and scalar subqueries become
  :class:`~repro.algebra.operators.ScalarApply` nodes that optimizer
  rules later remove (decorrelation / cross-join subquery removal);
* aggregation planning: GROUP BY keys, aggregate extraction with
  ``FILTER (WHERE …)`` masks and DISTINCT flags, HAVING;
* window functions (``OVER (PARTITION BY …)``) and SELECT DISTINCT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    FALSE,
    TRUE,
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    make_and,
)
from repro.algebra.operators import (
    AGGREGATE_FUNCTIONS,
    AggregateAssignment,
    Filter,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    PlanNode,
    Project,
    ScalarApply,
    Scan,
    Sort,
    SortKey,
    UnionAll,
    Values,
    Window,
    WindowAssignment,
    aggregate_result_type,
)
from repro.algebra.schema import Column
from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog
from repro.errors import BindingError
from repro.sql import ast
from repro.sql.parser import parse


@dataclass(frozen=True)
class BoundQuery:
    """A bound plan plus the user-facing output column names."""

    plan: PlanNode
    column_names: tuple[str, ...]

    @property
    def output_columns(self) -> tuple[Column, ...]:
        return self.plan.output_columns


class _Relation:
    """One FROM item visible in a scope."""

    def __init__(self, alias: str | None, columns: list[tuple[str, Column]]):
        self.alias = alias
        self.columns = columns

    def find(self, name: str) -> list[Column]:
        lowered = name.lower()
        return [col for cname, col in self.columns if cname.lower() == lowered]


class _Scope:
    """Name-resolution scope; ``parent`` enables correlated references."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.relations: list[_Relation] = []

    def add(self, relation: _Relation) -> None:
        self.relations.append(relation)

    def resolve(self, identifier: ast.Identifier) -> Column:
        qualifier = identifier.qualifier
        name = identifier.column
        matches: list[Column] = []
        for relation in self.relations:
            if qualifier is not None:
                if relation.alias is None or relation.alias.lower() != qualifier.lower():
                    continue
            matches.extend(relation.find(name))
        if len(matches) > 1:
            raise BindingError(f"ambiguous column reference {'.'.join(identifier.parts)!r}")
        if matches:
            return matches[0]
        if self.parent is not None:
            return self.parent.resolve(identifier)
        raise BindingError(f"unknown column {'.'.join(identifier.parts)!r}")

    def all_columns(self, qualifier: str | None = None) -> list[tuple[str, Column]]:
        out: list[tuple[str, Column]] = []
        for relation in self.relations:
            if qualifier is not None:
                if relation.alias is None or relation.alias.lower() != qualifier.lower():
                    continue
            out.extend(relation.columns)
        if qualifier is not None and not out:
            raise BindingError(f"unknown relation {qualifier!r} in star expansion")
        return out


class _CteEnv:
    """Immutable chain of WITH definitions in scope."""

    def __init__(self, parent: "_CteEnv | None" = None):
        self.parent = parent
        self.entries: dict[str, tuple[ast.Query, "_CteEnv"]] = {}

    def define(self, name: str, query: ast.Query) -> None:
        self.entries[name.lower()] = (query, self)

    def lookup(self, name: str) -> tuple[ast.Query, "_CteEnv"] | None:
        env: _CteEnv | None = self
        while env is not None:
            hit = env.entries.get(name.lower())
            if hit is not None:
                return hit
            env = env.parent
        return None


class _Block:
    """Mutable state while binding one SELECT block.

    Scalar subqueries splice ScalarApply nodes onto ``plan`` as they
    are encountered inside expressions.
    """

    def __init__(self, plan: PlanNode, scope: _Scope):
        self.plan = plan
        self.scope = scope


class Binder:
    """Binds parsed queries against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.allocator = catalog.allocator

    # -- public API ---------------------------------------------------------

    def bind_sql(self, sql: str) -> BoundQuery:
        """Parse and bind a SQL string."""
        return self.bind(parse(sql))

    def bind(self, query: ast.Query) -> BoundQuery:
        plan, names = self._bind_query(query, None, _CteEnv())
        return BoundQuery(plan, tuple(names))

    # -- query / set operations ----------------------------------------------

    def _bind_query(
        self, query: ast.Query, parent_scope: _Scope | None, ctes: _CteEnv
    ) -> tuple[PlanNode, list[str]]:
        env = ctes
        if query.ctes:
            env = _CteEnv(ctes)
            for name, cte_query in query.ctes:
                env.define(name, cte_query)
        if isinstance(query.body, ast.UnionAllBody):
            plan, names = self._bind_union(query.body, parent_scope, env)
        else:
            plan, names = self._bind_select(query.body, parent_scope, env)
        if query.order_by:
            plan = self._bind_order_by(plan, names, query.order_by)
        if query.limit is not None:
            plan = Limit(plan, query.limit)
        return plan, names

    def _bind_union(
        self, body: ast.UnionAllBody, parent_scope: _Scope | None, ctes: _CteEnv
    ) -> tuple[PlanNode, list[str]]:
        bound = [self._bind_select(branch, parent_scope, ctes) for branch in body.branches]
        first_plan, first_names = bound[0]
        arity = len(first_plan.output_columns)
        for plan, _ in bound[1:]:
            if len(plan.output_columns) != arity:
                raise BindingError("UNION ALL branches must have the same arity")
        outputs = tuple(
            self.allocator.fresh(name, col.dtype)
            for name, col in zip(first_names, first_plan.output_columns)
        )
        return (
            UnionAll(
                tuple(plan for plan, _ in bound),
                outputs,
                tuple(plan.output_columns for plan, _ in bound),
            ),
            list(first_names),
        )

    def _bind_order_by(
        self, plan: PlanNode, names: list[str], items: tuple[ast.OrderItem, ...]
    ) -> PlanNode:
        # ORDER BY resolves against the query's output columns.
        scope = _Scope()
        scope.add(_Relation(None, list(zip(names, plan.output_columns))))
        block = _Block(plan, scope)
        keys = []
        for item in items:
            expr = self._bind_scalar(item.expr, block, allow_subquery=False)
            keys.append(SortKey(expr, item.ascending))
        return Sort(block.plan, tuple(keys))

    # -- SELECT blocks ----------------------------------------------------

    def _bind_select(
        self, select: ast.Select, parent_scope: _Scope | None, ctes: _CteEnv
    ) -> tuple[PlanNode, list[str]]:
        scope = _Scope(parent_scope)
        plan = self._bind_from(select.from_refs, scope, ctes)
        block = _Block(plan, scope)
        block.ctes = ctes  # used when binding IN-subqueries

        if select.where is not None:
            self._bind_where(select.where, block, ctes)

        has_aggregates = bool(select.group_by) or self._contains_aggregate(select)
        group_columns: list[Column] = []
        group_exprs: list[Expression] = []
        replacements: dict[Expression, Column] = {}

        if has_aggregates:
            group_exprs = [
                self._bind_scalar(g, block, allow_subquery=False) for g in select.group_by
            ]
            plan, group_columns = self._materialize_group_keys(block.plan, group_exprs)
            block.plan = plan
            aggregates = self._collect_aggregates(select)
            assignments: list[AggregateAssignment] = []
            seen: dict[tuple, Column] = {}
            agg_targets: dict[ast.FuncCall, Column] = {}
            for call in aggregates:
                assignment = self._bind_aggregate(call, block)
                key = (
                    assignment.func,
                    assignment.argument,
                    assignment.mask,
                    assignment.distinct,
                )
                if key in seen:
                    agg_targets[call] = seen[key]
                else:
                    assignments.append(assignment)
                    seen[key] = assignment.target
                    agg_targets[call] = assignment.target
            block.plan = GroupBy(block.plan, tuple(group_columns), tuple(assignments))
            for expr, col in zip(group_exprs, group_columns):
                replacements[expr] = col
            self._agg_targets = agg_targets
        else:
            self._agg_targets = {}

        if select.having is not None:
            if not has_aggregates:
                raise BindingError("HAVING requires aggregation")
            condition = self._bind_projected(
                select.having, block, replacements, group_columns
            )
            block.plan = Filter(block.plan, condition)

        window_targets = self._bind_windows(select, block, replacements, group_columns)

        items = self._expand_items(select, scope)
        out_names: list[str] = []
        assignments_out: list[tuple[Column, Expression]] = []
        for expr_ast, name in items:
            if has_aggregates:
                bound = self._bind_projected(expr_ast, block, replacements, group_columns)
            else:
                bound = self._bind_scalar(
                    expr_ast, block, allow_subquery=True, windows=window_targets
                )
            target = self.allocator.fresh(name, bound.dtype)
            assignments_out.append((target, bound))
            out_names.append(name)
        block.plan = Project(block.plan, tuple(assignments_out))

        if select.distinct:
            block.plan = GroupBy(block.plan, block.plan.output_columns, ())
        return block.plan, out_names

    # -- FROM ----------------------------------------------------------------

    def _bind_from(
        self, refs: tuple[ast.TableRef, ...], scope: _Scope, ctes: _CteEnv
    ) -> PlanNode:
        if not refs:
            # SELECT without FROM: a single empty row.
            return Values((), ((),))
        plan: PlanNode | None = None
        for ref in refs:
            sub = self._bind_table_ref(ref, scope, ctes)
            plan = sub if plan is None else Join(JoinKind.CROSS, plan, sub)
        return plan

    def _bind_table_ref(self, ref: ast.TableRef, scope: _Scope, ctes: _CteEnv) -> PlanNode:
        if isinstance(ref, ast.NamedTable):
            cte = ctes.lookup(ref.name)
            if cte is not None:
                query, env = cte
                # CTE inlining: every reference binds a fresh copy.
                plan, names = self._bind_query(query, None, env)
                alias = ref.alias or ref.name
                scope.add(_Relation(alias, list(zip(names, plan.output_columns))))
                return plan
            if not self.catalog.has_table(ref.name):
                raise BindingError(f"unknown table {ref.name!r}")
            columns, sources = self.catalog.fresh_scan_columns(ref.name)
            plan = Scan(ref.name.lower(), columns, sources)
            alias = ref.alias or ref.name
            scope.add(_Relation(alias, [(c.name, c) for c in columns]))
            return plan
        if isinstance(ref, ast.DerivedTable):
            plan, names = self._bind_query(ref.query, scope.parent, ctes)
            names = self._apply_column_aliases(names, ref.column_aliases, ref.alias)
            scope.add(_Relation(ref.alias, list(zip(names, plan.output_columns))))
            return plan
        if isinstance(ref, ast.ValuesTable):
            return self._bind_values(ref, scope)
        if isinstance(ref, ast.JoinedTable):
            left = self._bind_table_ref(ref.left, scope, ctes)
            right = self._bind_table_ref(ref.right, scope, ctes)
            if ref.kind == "cross":
                return Join(JoinKind.CROSS, left, right)
            block = _Block(Join(JoinKind.CROSS, left, right), scope)
            condition = self._bind_scalar(ref.condition, block, allow_subquery=False)
            kind = JoinKind.INNER if ref.kind == "inner" else JoinKind.LEFT
            return Join(kind, left, right, condition)
        raise BindingError(f"unsupported table reference {type(ref).__name__}")

    def _apply_column_aliases(
        self, names: list[str], aliases: tuple[str, ...], relation: str
    ) -> list[str]:
        if not aliases:
            return names
        if len(aliases) != len(names):
            raise BindingError(
                f"relation {relation!r} has {len(names)} columns, "
                f"{len(aliases)} aliases given"
            )
        return list(aliases)

    def _bind_values(self, ref: ast.ValuesTable, scope: _Scope) -> PlanNode:
        rows = []
        for row in ref.rows:
            rows.append(tuple(self._const_value(expr) for expr in row))
        arity = len(rows[0])
        if any(len(r) != arity for r in rows):
            raise BindingError("VALUES rows must have the same arity")
        names = list(ref.column_aliases) or [f"col{i+1}" for i in range(arity)]
        if len(names) != arity:
            raise BindingError("VALUES column alias count mismatch")
        columns = tuple(
            self.allocator.fresh(name, self._value_type(rows, i))
            for i, name in enumerate(names)
        )
        scope.add(_Relation(ref.alias, [(c.name, c) for c in columns]))
        return Values(columns, tuple(rows))

    @staticmethod
    def _value_type(rows: list[tuple], index: int) -> DataType:
        for row in rows:
            value = row[index]
            if value is None:
                continue
            if isinstance(value, bool):
                return DataType.BOOLEAN
            if isinstance(value, int):
                return DataType.INTEGER
            if isinstance(value, float):
                return DataType.DOUBLE
            return DataType.STRING
        return DataType.INTEGER

    def _const_value(self, expr: ast.SqlExpr) -> object:
        if isinstance(expr, ast.NumberLit):
            return int(expr.text) if expr.is_integer else float(expr.text)
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            inner = self._const_value(expr.operand)
            return None if inner is None else -inner
        raise BindingError("VALUES rows must contain literals")

    # -- WHERE ----------------------------------------------------------------

    def _bind_where(self, where: ast.SqlExpr, block: _Block, ctes: _CteEnv) -> None:
        residual: list[Expression] = []
        for conjunct in self._split_and(where):
            if isinstance(conjunct, ast.InSubqueryExpr):
                self._bind_in_subquery(conjunct, block, ctes)
            elif isinstance(conjunct, ast.ExistsExpr):
                self._bind_exists(conjunct, block, ctes)
            else:
                residual.append(self._bind_scalar(conjunct, block, allow_subquery=True))
        if residual:
            block.plan = Filter(block.plan, make_and(residual))

    @staticmethod
    def _split_and(expr: ast.SqlExpr) -> list[ast.SqlExpr]:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            return Binder._split_and(expr.left) + Binder._split_and(expr.right)
        return [expr]

    def _bind_in_subquery(
        self, expr: ast.InSubqueryExpr, block: _Block, ctes: _CteEnv
    ) -> None:
        operand = self._bind_scalar(expr.operand, block, allow_subquery=False)
        # Bind with the outer scope visible so a correlated reference
        # resolves — and can then be rejected with a precise error.
        sub_plan, _ = self._bind_query(expr.query, block.scope, ctes)
        if len(sub_plan.output_columns) != 1:
            raise BindingError("IN subquery must return exactly one column")
        self._reject_correlation(sub_plan, block, "IN subquery")
        condition = Comparison("=", operand, ColumnRef(sub_plan.output_columns[0]))
        kind = JoinKind.ANTI if expr.negated else JoinKind.SEMI
        block.plan = Join(kind, block.plan, sub_plan, condition)

    def _bind_exists(self, expr: ast.ExistsExpr, block: _Block, ctes: _CteEnv) -> None:
        sub_plan, _ = self._bind_query(expr.query, block.scope, ctes)
        self._reject_correlation(sub_plan, block, "EXISTS")
        kind = JoinKind.ANTI if expr.negated else JoinKind.SEMI
        block.plan = Join(kind, block.plan, sub_plan, TRUE)

    def _reject_correlation(self, sub_plan: PlanNode, block: _Block, what: str) -> None:
        from repro.algebra.operators import referenced_columns
        from repro.algebra.visitors import walk_plan

        produced: set[Column] = set()
        referenced: set[Column] = set()
        for node in walk_plan(sub_plan):
            produced |= set(node.output_columns)
            referenced |= referenced_columns(node)
        outer = set(block.plan.output_columns)
        if any(c in outer for c in referenced - produced):
            raise BindingError(f"correlated {what} is not supported")

    # -- aggregation -------------------------------------------------------

    def _contains_aggregate(self, select: ast.Select) -> bool:
        exprs: list[ast.SqlExpr] = [item.expr for item in select.items]
        if select.having is not None:
            exprs.append(select.having)
        return any(self._find_aggregates(e) for e in exprs)

    def _find_aggregates(self, expr: ast.SqlExpr) -> list[ast.FuncCall]:
        found: list[ast.FuncCall] = []

        def visit(node: object) -> None:
            if isinstance(node, ast.FuncCall):
                if node.over is None and node.name.lower() in AGGREGATE_FUNCTIONS:
                    found.append(node)
                    return  # no nested aggregates
                for arg in node.args:
                    visit(arg)
                if node.filter_where is not None:
                    visit(node.filter_where)
                return
            if isinstance(node, ast.ScalarSubquery):
                return  # separate block
            if isinstance(node, ast.BinaryOp):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.UnaryOp):
                visit(node.operand)
            elif isinstance(node, ast.IsNullExpr):
                visit(node.operand)
            elif isinstance(node, ast.BetweenExpr):
                visit(node.operand)
                visit(node.low)
                visit(node.high)
            elif isinstance(node, ast.LikeExpr):
                visit(node.operand)
            elif isinstance(node, ast.InListExpr):
                visit(node.operand)
                for item in node.items:
                    visit(item)
            elif isinstance(node, ast.CaseExpr):
                for cond, value in node.whens:
                    visit(cond)
                    visit(value)
                if node.default is not None:
                    visit(node.default)

        visit(expr)
        return found

    def _collect_aggregates(self, select: ast.Select) -> list[ast.FuncCall]:
        exprs: list[ast.SqlExpr] = [item.expr for item in select.items]
        if select.having is not None:
            exprs.append(select.having)
        calls: list[ast.FuncCall] = []
        seen: set = set()
        for expr in exprs:
            for call in self._find_aggregates(expr):
                if call not in seen:
                    seen.add(call)
                    calls.append(call)
        return calls

    def _bind_aggregate(self, call: ast.FuncCall, block: _Block) -> AggregateAssignment:
        func = call.name.lower()
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            if func != "count":
                raise BindingError(f"{func}(*) is not a valid aggregate")
            argument = None
        elif len(call.args) == 1:
            argument = self._bind_scalar(call.args[0], block, allow_subquery=False)
        else:
            raise BindingError(f"aggregate {func} takes exactly one argument")
        mask: Expression = TRUE
        if call.filter_where is not None:
            mask = self._bind_scalar(call.filter_where, block, allow_subquery=False)
        target = self.allocator.fresh(func, aggregate_result_type(func, argument))
        return AggregateAssignment(target, func, argument, mask, call.distinct)

    def _materialize_group_keys(
        self, plan: PlanNode, group_exprs: list[Expression]
    ) -> tuple[PlanNode, list[Column]]:
        """Ensure every group expression is a plain child column,
        inserting a projection for computed keys."""
        computed = [e for e in group_exprs if not isinstance(e, ColumnRef)]
        if not computed:
            return plan, [e.column for e in group_exprs if isinstance(e, ColumnRef)]
        assignments = [(c, ColumnRef(c)) for c in plan.output_columns]
        keys: list[Column] = []
        for expr in group_exprs:
            if isinstance(expr, ColumnRef):
                keys.append(expr.column)
            else:
                fresh = self.allocator.fresh("group_key", expr.dtype)
                assignments.append((fresh, expr))
                keys.append(fresh)
        return Project(plan, tuple(assignments)), keys

    def _bind_projected(
        self,
        expr: ast.SqlExpr,
        block: _Block,
        replacements: dict[Expression, Column],
        group_columns: list[Column],
    ) -> Expression:
        """Bind an expression in the post-aggregation scope: aggregate
        calls map to their target columns; other subtrees must reduce
        to group keys."""
        bound = self._bind_scalar(
            expr, block, allow_subquery=True, aggregates=self._agg_targets
        )
        if replacements:
            from repro.algebra.expressions import transform

            def swap(node: Expression) -> Expression:
                target = replacements.get(node)
                if target is not None:
                    return ColumnRef(target)
                return node

            bound = transform(bound, swap)
        self._check_grouped(bound, group_columns, block)
        return bound

    def _check_grouped(
        self, expr: Expression, group_columns: list[Column], block: _Block
    ) -> None:
        from repro.algebra.expressions import columns_in

        allowed = set(group_columns) | set(block.plan.output_columns)
        # Columns of the pre-aggregation input are not visible anymore,
        # except via group keys (which keep their identity).
        produced_by_groupby = set(block.plan.output_columns)
        for column in columns_in(expr):
            if column not in produced_by_groupby:
                raise BindingError(
                    f"column {column!r} must appear in GROUP BY or an aggregate"
                )

    # -- window functions -------------------------------------------------

    def _bind_windows(
        self,
        select: ast.Select,
        block: _Block,
        replacements: dict[Expression, Column],
        group_columns: list[Column],
    ) -> dict[ast.FuncCall, Column]:
        calls: list[ast.FuncCall] = []
        seen: set = set()

        def visit(node: object) -> None:
            if isinstance(node, ast.FuncCall):
                if node.over is not None:
                    if node not in seen:
                        seen.add(node)
                        calls.append(node)
                    return
                for arg in node.args:
                    visit(arg)
                return
            if isinstance(node, ast.BinaryOp):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.UnaryOp):
                visit(node.operand)
            elif isinstance(node, ast.CaseExpr):
                for cond, value in node.whens:
                    visit(cond)
                    visit(value)
                if node.default is not None:
                    visit(node.default)

        for item in select.items:
            visit(item.expr)
        if not calls:
            return {}

        targets: dict[ast.FuncCall, Column] = {}
        assignments: list[WindowAssignment] = []
        partition: tuple[Column, ...] | None = None
        for call in calls:
            func = call.name.lower()
            if func not in AGGREGATE_FUNCTIONS:
                raise BindingError(f"unsupported window function {func!r}")
            if call.distinct or call.filter_where is not None:
                raise BindingError("window aggregates do not support DISTINCT/FILTER")
            part_cols: list[Column] = []
            for part in call.over.partition_by:
                bound = self._bind_scalar(part, block, allow_subquery=False)
                if not isinstance(bound, ColumnRef):
                    raise BindingError("PARTITION BY must reference plain columns")
                part_cols.append(bound.column)
            key = tuple(part_cols)
            if partition is None:
                partition = key
            elif partition != key:
                raise BindingError(
                    "multiple window partitions in one SELECT are not supported"
                )
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                if func != "count":
                    raise BindingError(f"{func}(*) is not a valid window aggregate")
                argument = None
            elif len(call.args) == 1:
                argument = self._bind_scalar(call.args[0], block, allow_subquery=False)
            else:
                raise BindingError("window aggregates take exactly one argument")
            target = self.allocator.fresh(func, aggregate_result_type(func, argument))
            assignments.append(WindowAssignment(target, func, argument))
            targets[call] = target
        block.plan = Window(block.plan, partition or (), tuple(assignments))
        return targets

    # -- select items ----------------------------------------------------

    def _expand_items(
        self, select: ast.Select, scope: _Scope
    ) -> list[tuple[ast.SqlExpr, str]]:
        items: list[tuple[ast.SqlExpr, str]] = []
        counter = 0
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                for name, column in scope.all_columns(item.expr.qualifier):
                    items.append((ast.Identifier((name,)), name))
                continue
            if item.alias is not None:
                name = item.alias
            elif isinstance(item.expr, ast.Identifier):
                name = item.expr.column
            else:
                counter += 1
                name = f"_col{counter}"
            items.append((item.expr, name))
        return items

    # -- scalar expressions -------------------------------------------------

    def _bind_scalar(
        self,
        expr: ast.SqlExpr,
        block: _Block,
        allow_subquery: bool,
        aggregates: dict[ast.FuncCall, Column] | None = None,
        windows: dict[ast.FuncCall, Column] | None = None,
    ) -> Expression:
        aggregates = aggregates or {}
        windows = windows or {}

        def bind(node: ast.SqlExpr) -> Expression:
            if isinstance(node, ast.Identifier):
                # An identifier may resolve through star-expanded names;
                # scope resolution handles qualifiers and correlation.
                return ColumnRef(block.scope.resolve(node))
            if isinstance(node, ast.NumberLit):
                if node.is_integer:
                    return Literal(int(node.text), DataType.INTEGER)
                return Literal(float(node.text), DataType.DOUBLE)
            if isinstance(node, ast.StringLit):
                return Literal(node.value, DataType.STRING)
            if isinstance(node, ast.BoolLit):
                return TRUE if node.value else FALSE
            if isinstance(node, ast.NullLit):
                return Literal(None, DataType.BOOLEAN)
            if isinstance(node, ast.BinaryOp):
                if node.op == "AND":
                    return And((bind(node.left), bind(node.right)))
                if node.op == "OR":
                    return Or((bind(node.left), bind(node.right)))
                if node.op in ("+", "-", "*", "/"):
                    return Arithmetic(node.op, bind(node.left), bind(node.right))
                return Comparison(node.op, bind(node.left), bind(node.right))
            if isinstance(node, ast.UnaryOp):
                if node.op == "NOT":
                    return Not(bind(node.operand))
                operand = bind(node.operand)
                if isinstance(operand, Literal) and operand.value is not None:
                    return Literal(-operand.value, operand.type)
                return Arithmetic("-", Literal(0, DataType.INTEGER), operand)
            if isinstance(node, ast.IsNullExpr):
                inner = IsNull(bind(node.operand))
                return Not(inner) if node.negated else inner
            if isinstance(node, ast.BetweenExpr):
                operand = bind(node.operand)
                low = bind(node.low)
                high = bind(node.high)
                between = And(
                    (Comparison(">=", operand, low), Comparison("<=", operand, high))
                )
                return Not(between) if node.negated else between
            if isinstance(node, ast.LikeExpr):
                like = Like(bind(node.operand), node.pattern)
                return Not(like) if node.negated else like
            if isinstance(node, ast.InListExpr):
                inlist = InList(bind(node.operand), tuple(bind(i) for i in node.items))
                return Not(inlist) if node.negated else inlist
            if isinstance(node, ast.CaseExpr):
                whens = tuple((bind(c), bind(v)) for c, v in node.whens)
                default = (
                    bind(node.default)
                    if node.default is not None
                    else Literal(None, whens[0][1].dtype)
                )
                return Case(whens, default)
            if isinstance(node, ast.ScalarSubquery):
                if not allow_subquery:
                    raise BindingError("scalar subquery is not allowed here")
                return self._bind_scalar_subquery(node, block)
            if isinstance(node, ast.FuncCall):
                if node in windows:
                    return ColumnRef(windows[node])
                if node in aggregates:
                    return ColumnRef(aggregates[node])
                func = node.name.lower()
                if node.over is not None or func in AGGREGATE_FUNCTIONS:
                    raise BindingError(
                        f"aggregate/window function {func!r} is not allowed here"
                    )
                return FunctionCall(func, tuple(bind(a) for a in node.args))
            if isinstance(node, (ast.InSubqueryExpr, ast.ExistsExpr)):
                raise BindingError(
                    "IN/EXISTS subqueries are only supported as top-level "
                    "WHERE conjuncts"
                )
            raise BindingError(f"unsupported expression {type(node).__name__}")

        return bind(expr)

    def _bind_scalar_subquery(self, node: ast.ScalarSubquery, block: _Block) -> Expression:
        ctes = getattr(block, "ctes", _CteEnv())
        sub_plan, _ = self._bind_query(node.query, block.scope, ctes)
        if len(sub_plan.output_columns) != 1:
            raise BindingError("scalar subquery must return exactly one column")
        value = sub_plan.output_columns[0]
        output = self.allocator.fresh(value.name, value.dtype)
        block.plan = ScalarApply(block.plan, sub_plan, value, output)
        return ColumnRef(output)
