"""Recursive-descent SQL parser.

Parses the dialect described in :mod:`repro.sql.ast`.  Entry point is
:func:`parse`, which returns a :class:`~repro.sql.ast.Query`.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

#: Words that terminate an expression or a FROM item and therefore can
#: never be used as an implicit alias.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
    "UNION", "ALL", "ON", "JOIN", "LEFT", "RIGHT", "INNER", "OUTER",
    "CROSS", "AS", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN",
    "LIKE", "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END",
    "DISTINCT", "FILTER", "OVER", "PARTITION", "WITH", "VALUES",
    "TRUE", "FALSE", "ASC", "DESC", "BY",
}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        return SqlSyntaxError(
            f"{message} (found {token.text!r})", token.line, token.column
        )

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.type is TokenType.IDENT and token.upper in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def at_punct(self, text: str) -> bool:
        token = self.current
        return token.type in (TokenType.PUNCT, TokenType.OPERATOR) and token.text == text

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise self.error(f"expected {text!r}")

    # -- query structure ----------------------------------------------------

    def parse_query(self) -> ast.Query:
        ctes: list[tuple[str, ast.Query]] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_identifier("CTE name")
                self.expect_keyword("AS")
                self.expect_punct("(")
                ctes.append((name, self.parse_query()))
                self.expect_punct(")")
                if not self.accept_punct(","):
                    break
        branches = [self.parse_select()]
        while self.at_keyword("UNION"):
            self.advance()
            self.expect_keyword("ALL")
            branches.append(self.parse_select())
        body: object
        if len(branches) == 1:
            body = branches[0]
        else:
            body = ast.UnionAllBody(tuple(branches))
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr, ascending))
                if not self.accept_punct(","):
                    break
        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER or "." in token.text:
                raise self.error("expected integer LIMIT")
            limit = int(self.advance().text)
        return ast.Query(body, tuple(ctes), tuple(order_by), limit)

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        from_refs: list[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            from_refs.append(self.parse_table_ref())
            while self.accept_punct(","):
                from_refs.append(self.parse_table_ref())
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        group_by: list[ast.SqlExpr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punct(","):
                group_by.append(self.parse_expression())
        having = self.parse_expression() if self.accept_keyword("HAVING") else None
        return ast.Select(
            tuple(items), tuple(from_refs), where, tuple(group_by), having, distinct
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.at_punct("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # qualified star:  t.*
        if (
            self.current.type is TokenType.IDENT
            and self.current.upper not in _RESERVED
            and self.peek(1).text == "."
            and self.peek(2).text == "*"
        ):
            qualifier = self.advance().text
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(ast.Star(qualifier))
        expr = self.parse_expression()
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENT and self.current.upper not in _RESERVED:
            alias = self.advance().text
        return ast.SelectItem(expr, alias)

    def expect_identifier(self, what: str) -> str:
        token = self.current
        if token.type is not TokenType.IDENT or token.upper in _RESERVED:
            raise self.error(f"expected {what}")
        return self.advance().text

    # -- FROM clause ----------------------------------------------------

    def parse_table_ref(self) -> ast.TableRef:
        ref = self.parse_primary_ref()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self.parse_primary_ref()
                ref = ast.JoinedTable("cross", ref, right, None)
                continue
            kind = None
            if self.at_keyword("JOIN"):
                kind = "inner"
                self.advance()
            elif self.at_keyword("INNER") and self.peek(1).upper == "JOIN":
                self.advance()
                self.advance()
                kind = "inner"
            elif self.at_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "left"
            if kind is None:
                return ref
            right = self.parse_primary_ref()
            self.expect_keyword("ON")
            condition = self.parse_expression()
            ref = ast.JoinedTable(kind, ref, right, condition)

    def parse_primary_ref(self) -> ast.TableRef:
        if self.accept_punct("("):
            if self.at_keyword("VALUES"):
                self.advance()
                rows = [self.parse_values_row()]
                while self.accept_punct(","):
                    rows.append(self.parse_values_row())
                self.expect_punct(")")
                alias, col_aliases = self.parse_alias_clause(required=True)
                return ast.ValuesTable(tuple(rows), alias, col_aliases)
            query = self.parse_query()
            self.expect_punct(")")
            alias, col_aliases = self.parse_alias_clause(required=True)
            return ast.DerivedTable(query, alias, col_aliases)
        name = self.expect_identifier("table name")
        alias, _ = self.parse_alias_clause(required=False)
        return ast.NamedTable(name, alias)

    def parse_values_row(self) -> tuple[ast.SqlExpr, ...]:
        self.expect_punct("(")
        exprs = [self.parse_expression()]
        while self.accept_punct(","):
            exprs.append(self.parse_expression())
        self.expect_punct(")")
        return tuple(exprs)

    def parse_alias_clause(self, required: bool) -> tuple[str | None, tuple[str, ...]]:
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENT and self.current.upper not in _RESERVED:
            alias = self.advance().text
        if alias is None and required:
            raise self.error("derived table requires an alias")
        col_aliases: tuple[str, ...] = ()
        if alias is not None and self.at_punct("("):
            self.advance()
            names = [self.expect_identifier("column alias")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("column alias"))
            self.expect_punct(")")
            col_aliases = tuple(names)
        return alias, col_aliases

    # -- expressions ----------------------------------------------------

    def parse_expression(self) -> ast.SqlExpr:
        return self.parse_or()

    def parse_or(self) -> ast.SqlExpr:
        expr = self.parse_and()
        while self.accept_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self.parse_and())
        return expr

    def parse_and(self) -> ast.SqlExpr:
        expr = self.parse_not()
        while self.accept_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self.parse_not())
        return expr

    def parse_not(self) -> ast.SqlExpr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.SqlExpr:
        expr = self.parse_additive()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.text in _COMPARISONS:
                op = self.advance().text
                if op == "!=":
                    op = "<>"
                right = self.parse_additive()
                expr = ast.BinaryOp(op, expr, right)
                continue
            if self.at_keyword("IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                expr = ast.IsNullExpr(expr, negated)
                continue
            negated = False
            if self.at_keyword("NOT") and self.peek(1).upper in ("BETWEEN", "IN", "LIKE"):
                self.advance()
                negated = True
            if self.accept_keyword("BETWEEN"):
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                expr = ast.BetweenExpr(expr, low, high, negated)
                continue
            if self.accept_keyword("LIKE"):
                token = self.current
                if token.type is not TokenType.STRING:
                    raise self.error("LIKE requires a string literal pattern")
                expr = ast.LikeExpr(expr, self.advance().text, negated)
                continue
            if self.accept_keyword("IN"):
                self.expect_punct("(")
                if self.at_keyword("SELECT", "WITH"):
                    query = self.parse_query()
                    self.expect_punct(")")
                    expr = ast.InSubqueryExpr(expr, query, negated)
                else:
                    items = [self.parse_expression()]
                    while self.accept_punct(","):
                        items.append(self.parse_expression())
                    self.expect_punct(")")
                    expr = ast.InListExpr(expr, tuple(items), negated)
                continue
            return expr

    def parse_additive(self) -> ast.SqlExpr:
        expr = self.parse_multiplicative()
        while self.current.type is TokenType.OPERATOR and self.current.text in ("+", "-"):
            op = self.advance().text
            expr = ast.BinaryOp(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> ast.SqlExpr:
        expr = self.parse_unary()
        while self.current.type is TokenType.OPERATOR and self.current.text in ("*", "/"):
            op = self.advance().text
            expr = ast.BinaryOp(op, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> ast.SqlExpr:
        if self.current.type is TokenType.OPERATOR and self.current.text == "-":
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.SqlExpr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.NumberLit(token.text)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.StringLit(token.text)
        if self.at_keyword("TRUE"):
            self.advance()
            return ast.BoolLit(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return ast.BoolLit(False)
        if self.at_keyword("NULL"):
            self.advance()
            return ast.NullLit()
        if self.at_keyword("CASE"):
            return self.parse_case()
        if self.at_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            query = self.parse_query()
            self.expect_punct(")")
            return ast.ExistsExpr(query, negated=False)
        if self.at_punct("("):
            self.advance()
            if self.at_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self.expect_punct(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENT and token.upper not in _RESERVED:
            if self.peek(1).text == "(":
                return self.parse_function_call()
            return self.parse_identifier()
        raise self.error("expected an expression")

    def parse_case(self) -> ast.SqlExpr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.SqlExpr, ast.SqlExpr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expression()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = self.parse_expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.CaseExpr(tuple(whens), default)

    def parse_identifier(self) -> ast.SqlExpr:
        parts = [self.expect_identifier("identifier")]
        while self.at_punct(".") and self.peek(1).type is TokenType.IDENT:
            self.advance()
            parts.append(self.expect_identifier("identifier"))
        return ast.Identifier(tuple(parts))

    def parse_function_call(self) -> ast.SqlExpr:
        name = self.advance().text
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        args: list[ast.SqlExpr] = []
        if self.at_punct("*"):
            self.advance()
            args.append(ast.Star())
        elif not self.at_punct(")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        filter_where: ast.SqlExpr | None = None
        if self.at_keyword("FILTER"):
            self.advance()
            self.expect_punct("(")
            self.expect_keyword("WHERE")
            filter_where = self.parse_expression()
            self.expect_punct(")")
        over: ast.WindowSpec | None = None
        if self.at_keyword("OVER"):
            self.advance()
            self.expect_punct("(")
            partition: list[ast.SqlExpr] = []
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                partition.append(self.parse_expression())
                while self.accept_punct(","):
                    partition.append(self.parse_expression())
            self.expect_punct(")")
            over = ast.WindowSpec(tuple(partition))
        return ast.FuncCall(name, tuple(args), distinct, filter_where, over)


def parse(text: str) -> ast.Query:
    """Parse SQL text into a :class:`~repro.sql.ast.Query`."""
    parser = _Parser(text)
    query = parser.parse_query()
    if parser.current.type is not TokenType.EOF:
        raise parser.error("unexpected trailing input")
    return query
