"""SQL abstract syntax tree.

The AST is deliberately separate from the algebra: names are unresolved
strings here; the binder (:mod:`repro.sql.binder`) turns them into
column identities.  The node set covers the dialect the TPC-DS-style
workload needs: WITH, SELECT (DISTINCT), expressions with aggregates /
FILTER / window OVER(PARTITION BY), joins (comma and explicit), derived
tables, VALUES, IN/EXISTS/scalar subqueries, BETWEEN, CASE, LIKE,
UNION ALL, GROUP BY / HAVING / ORDER BY / LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class SqlExpr:
    """Base class of AST expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Identifier(SqlExpr):
    """A possibly-qualified name: ``a`` or ``t.a``."""

    parts: tuple[str, ...]

    @property
    def qualifier(self) -> str | None:
        return self.parts[0] if len(self.parts) > 1 else None

    @property
    def column(self) -> str:
        return self.parts[-1]


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    text: str

    @property
    def is_integer(self) -> bool:
        return "." not in self.text


@dataclass(frozen=True)
class StringLit(SqlExpr):
    value: str


@dataclass(frozen=True)
class BoolLit(SqlExpr):
    value: bool


@dataclass(frozen=True)
class NullLit(SqlExpr):
    pass


@dataclass(frozen=True)
class Star(SqlExpr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class BinaryOp(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class UnaryOp(SqlExpr):
    op: str  # "-" or "NOT"
    operand: SqlExpr


@dataclass(frozen=True)
class IsNullExpr(SqlExpr):
    operand: SqlExpr
    negated: bool


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool


@dataclass(frozen=True)
class LikeExpr(SqlExpr):
    operand: SqlExpr
    pattern: str
    negated: bool


@dataclass(frozen=True)
class InListExpr(SqlExpr):
    operand: SqlExpr
    items: tuple[SqlExpr, ...]
    negated: bool


@dataclass(frozen=True)
class InSubqueryExpr(SqlExpr):
    operand: SqlExpr
    query: "Query"
    negated: bool


@dataclass(frozen=True)
class ExistsExpr(SqlExpr):
    query: "Query"
    negated: bool


@dataclass(frozen=True)
class ScalarSubquery(SqlExpr):
    query: "Query"


@dataclass(frozen=True)
class CaseExpr(SqlExpr):
    whens: tuple[tuple[SqlExpr, SqlExpr], ...]
    default: SqlExpr | None


@dataclass(frozen=True)
class WindowSpec:
    partition_by: tuple[SqlExpr, ...]


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    """Function call: scalar, aggregate (with DISTINCT / FILTER), or
    windowed aggregate (with OVER)."""

    name: str
    args: tuple[SqlExpr, ...]
    distinct: bool = False
    filter_where: SqlExpr | None = None
    over: WindowSpec | None = None


# --------------------------------------------------------------------------
# Table references
# --------------------------------------------------------------------------


class TableRef:
    __slots__ = ()


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: str | None = None


@dataclass(frozen=True)
class DerivedTable(TableRef):
    query: "Query"
    alias: str
    column_aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class ValuesTable(TableRef):
    rows: tuple[tuple[SqlExpr, ...], ...]
    alias: str
    column_aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class JoinedTable(TableRef):
    kind: str  # "inner", "left", "cross"
    left: TableRef
    right: TableRef
    condition: SqlExpr | None


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    """One SELECT block."""

    items: tuple[SelectItem, ...]
    from_refs: tuple[TableRef, ...]
    where: SqlExpr | None = None
    group_by: tuple[SqlExpr, ...] = ()
    having: SqlExpr | None = None
    distinct: bool = False


@dataclass(frozen=True)
class UnionAllBody:
    """N-ary UNION ALL of SELECT blocks."""

    branches: tuple[Select, ...]


QueryBody = object  # Select | UnionAllBody


@dataclass(frozen=True)
class Query:
    """A full query: optional WITH list, body, ORDER BY, LIMIT."""

    body: QueryBody
    ctes: tuple[tuple[str, "Query"], ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
