"""SQL lexer.

Produces a flat token stream with line/column positions for error
reporting.  Keywords are not distinguished from identifiers here — the
parser decides contextually, which keeps the reserved-word set small.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def __repr__(self) -> str:
        return f"{self.type.value}:{self.text!r}@{self.line}:{self.column}"


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "||")
_PUNCT = "(),."


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text.  Raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def col(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", line, col(i))
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", line, col(i))
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), line, col(i)))
            i = j + 1
            continue
        if ch == '"':
            j = text.find('"', i + 1)
            if j == -1:
                raise SqlSyntaxError("unterminated quoted identifier", line, col(i))
            tokens.append(Token(TokenType.IDENT, text[i + 1 : j], line, col(i)))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is punctuation (e.g. "1.e")
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], line, col(i)))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokenType.IDENT, text[i:j], line, col(i)))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, line, col(i)))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, line, col(i)))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", line, col(i))

    tokens.append(Token(TokenType.EOF, "", line, col(i)))
    return tokens
