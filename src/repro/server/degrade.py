"""Graceful degradation: the execution ladder and circuit breakers.

A query that fails on the fast path should, wherever the failure is an
infrastructure problem rather than the user's, be retried on a simpler
configuration instead of surfacing an error (DESIGN.md §14).  The
ladder is a small lattice over three axes, each strictly decreasing:

* **engine**: ``compiled`` → ``batch`` → ``row`` — kernel synthesis or
  vector-backend failures fall back toward the simplest interpreter;
* **parallel** → **serial** — fragment/worker-pool failures
  (:class:`~repro.errors.WorkerPoolError`,
  :class:`FragmentError <repro.engine.parallel.FragmentError>`) rerun
  the query on the coordinator alone;
* **cache** → **no cache** —
  :class:`~repro.errors.DataCorruptionError` bypasses the plan cache
  (a poisoned cached result must not be replayed again).

User-fatal errors (syntax, binding, timeout, cancellation, resource
budgets, admission) never demote: retrying cannot fix the query, so
the error surfaces unchanged.  Every demotion is recorded in
``QueryMetrics.degradations`` and the rungs actually tried in
``QueryMetrics.ladder_path``.

Each rung has its own :class:`CircuitBreaker` with a rolling
failure-rate window: a rung that keeps failing is skipped outright
(fail fast, spend the work on a rung that works) until its cooldown
expires and a half-open probe succeeds.  When every reachable rung is
open the query fails with :class:`~repro.errors.CircuitOpenError`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from repro.engine.parallel import FragmentError, WorkerPoisonedError
from repro.errors import (
    AdmissionRejectedError,
    BindingError,
    CatalogError,
    CircuitOpenError,
    DataCorruptionError,
    QueryCancelledError,
    QueryQueueTimeoutError,
    QueryTimeoutError,
    ResourceExhaustedError,
    SqlSyntaxError,
    WorkerPoolError,
)
from repro.optimizer.config import OptimizerConfig

#: Engine demotion order (absent key = already at the bottom).
_ENGINE_LADDER = {"compiled": "batch", "batch": "row"}

#: Errors that no amount of degradation can fix — the query itself (or
#: its budget) is the problem, so they surface unchanged.
_USER_FATAL = (
    SqlSyntaxError,
    BindingError,
    CatalogError,
    QueryTimeoutError,
    QueryCancelledError,
    QueryQueueTimeoutError,
    ResourceExhaustedError,
    AdmissionRejectedError,
    CircuitOpenError,
)


@dataclass(frozen=True)
class Rung:
    """One point on the degradation lattice."""

    engine: str
    parallel: bool
    cache: bool

    @property
    def name(self) -> str:
        return "{}|{}|{}".format(
            self.engine,
            "parallel" if self.parallel else "serial",
            "cache" if self.cache else "nocache",
        )

    def config(self, base: OptimizerConfig) -> OptimizerConfig:
        """Specialize ``base`` for this rung."""
        return replace(
            base,
            engine=self.engine,
            workers=base.workers if self.parallel else 1,
            enable_plan_cache=base.enable_plan_cache and self.cache,
        )


def classify(exc: BaseException) -> str | None:
    """Which ladder axis (if any) this failure demotes.

    Returns ``"serial"``, ``"nocache"``, ``"engine"`` or ``None`` for
    user-fatal errors that must surface unchanged.
    """
    if isinstance(exc, _USER_FATAL):
        return None
    if isinstance(exc, (FragmentError, WorkerPoolError, WorkerPoisonedError)):
        return "serial"
    if isinstance(exc, DataCorruptionError):
        return "nocache"
    # Kernel-audit failures, optimizer bugs, execution errors, storage
    # retries exhausted, and anything unforeseen: simplify the engine.
    return "engine"


def demote(rung: Rung, exc: BaseException) -> Rung | None:
    """The next rung down for this failure, or None to surface it."""
    action = classify(exc)
    if action is None:
        return None
    if action == "serial":
        return replace(rung, parallel=False) if rung.parallel else None
    if action == "nocache":
        return replace(rung, cache=False) if rung.cache else None
    nxt = _ENGINE_LADDER.get(rung.engine)
    if nxt is not None:
        return replace(rung, engine=nxt)
    # Row engine still failing: shed parallelism, then the cache, then
    # give up — each step strictly decreases, so this terminates.
    if rung.parallel:
        return replace(rung, parallel=False)
    if rung.cache:
        return replace(rung, cache=False)
    return None


def step_down(rung: Rung) -> Rung | None:
    """Generic next-rung-down (used to route around an open breaker)."""
    if rung.engine in _ENGINE_LADDER:
        return replace(rung, engine=_ENGINE_LADDER[rung.engine])
    if rung.parallel:
        return replace(rung, parallel=False)
    if rung.cache:
        return replace(rung, cache=False)
    return None


class CircuitBreaker:
    """Rolling-window circuit breaker with half-open probing.

    *Closed* while the failure rate over the last ``window_s`` seconds
    stays under ``failure_threshold`` (rates are only trusted once
    ``min_samples`` outcomes are in the window).  *Open* rejects every
    request for ``cooldown_s``, then *half-opens*: exactly one probe is
    let through; success closes the breaker (window cleared), failure
    re-opens it for another cooldown.  The clock is injectable so tests
    need no sleeping.
    """

    def __init__(
        self,
        window_s: float = 30.0,
        failure_threshold: float = 0.5,
        min_samples: int = 5,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        self.window_s = window_s
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[tuple[float, bool]] = deque()
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_out = False
        self._probe_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _prune(self, now: float) -> None:
        while self._events and now - self._events[0][0] > self.window_s:
            self._events.popleft()

    def allow(self) -> bool:
        """May a request run on this rung right now?"""
        with self._lock:
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half_open"
                self._probe_out = False
            if self._state == "half_open":
                if self._probe_out and now - self._probe_at < self.cooldown_s:
                    return False
                # No probe out, or the outstanding probe never reported
                # back within a cooldown (its caller died, or hit a
                # user-fatal error that says nothing about the rung's
                # health): issue a fresh probe rather than leaving the
                # rung wedged shut forever.
                self._probe_out = True
                self._probe_at = now
                return True
            return True

    def probe_abort(self) -> None:
        """The in-flight half-open probe ended without a verdict on the
        rung's health (a user-fatal error is the query's fault, not the
        rung's): free the probe slot so the next request can probe
        immediately instead of waiting out the reissue cooldown."""
        with self._lock:
            if self._state == "half_open":
                self._probe_out = False

    def record(self, ok: bool) -> None:
        with self._lock:
            now = self._clock()
            if self._state == "half_open":
                self._probe_out = False
                if ok:
                    self._state = "closed"
                    self._events.clear()
                else:
                    self._state = "open"
                    self._opened_at = now
                    self.trips += 1
                return
            self._events.append((now, ok))
            self._prune(now)
            if self._state == "closed" and len(self._events) >= self.min_samples:
                failures = sum(1 for _, event_ok in self._events if not event_ok)
                if failures / len(self._events) >= self.failure_threshold:
                    self._state = "open"
                    self._opened_at = now
                    self.trips += 1


class DegradationSupervisor:
    """Walks a query down the ladder until a rung succeeds.

    ``run`` is supplied by the service: ``run(rung, sql) -> QueryResult``
    executes on that rung's session.  The supervisor owns one breaker
    per rung (created on first use from ``breaker_factory``) and
    annotates the result's metrics with the path taken.
    """

    def __init__(self, start: Rung, breaker_factory=CircuitBreaker):
        self.start = start
        self._breaker_factory = breaker_factory
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = self._breaker_factory()
            return breaker

    def breaker_states(self) -> dict[str, str]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.state for name, breaker in breakers.items()}

    def execute(self, run, sql: str):
        rung: Rung | None = self.start
        path: list[str] = []
        degradations: list[str] = []
        while True:
            assert rung is not None
            breaker = self.breaker(rung.name)
            if not breaker.allow():
                skipped = rung
                rung = step_down(rung)
                if rung is None:
                    raise CircuitOpenError(
                        f"no rung left to try: circuit open at "
                        f"{skipped.name} and every fallback"
                    )
                degradations.append(f"{skipped.name}->{rung.name}:CircuitOpen")
                continue
            path.append(rung.name)
            try:
                result = run(rung, sql)
            except Exception as exc:
                # User-fatal errors (bad SQL, blown budgets) say nothing
                # about the rung's health — recording them would let one
                # tenant's typos open the breaker for everyone.  But if
                # this request held the half-open probe slot, the slot
                # must be returned or the rung wedges shut.
                if classify(exc) is not None:
                    breaker.record(False)
                else:
                    breaker.probe_abort()
                nxt = demote(rung, exc)
                if nxt is None:
                    raise
                degradations.append(
                    f"{rung.name}->{nxt.name}:{type(exc).__name__}"
                )
                rung = nxt
                continue
            breaker.record(True)
            result.metrics.ladder_path = list(path)
            result.metrics.degradations.extend(degradations)
            return result
