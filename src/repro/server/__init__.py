"""Resilient multi-tenant query serving on top of the engine.

The serving layer of DESIGN.md §14: admission control and per-tenant
quotas (:mod:`repro.server.admission`), the graceful-degradation ladder
with per-rung circuit breakers (:mod:`repro.server.degrade`), the
concurrent :class:`~repro.server.service.QueryService` itself, and the
load generator / byte-identity oracle used by the benchmarks and chaos
tests (:mod:`repro.server.loadgen`).
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionStats,
    TenantQuota,
    TokenBucket,
)
from repro.server.degrade import (
    CircuitBreaker,
    DegradationSupervisor,
    Rung,
    classify,
    demote,
    step_down,
)
from repro.server.loadgen import LoadReport, run_load, rows_digest, serial_baseline
from repro.server.service import QueryService, QueryTicket, ServiceConfig

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CircuitBreaker",
    "DegradationSupervisor",
    "LoadReport",
    "QueryService",
    "QueryTicket",
    "Rung",
    "ServiceConfig",
    "TenantQuota",
    "TokenBucket",
    "classify",
    "demote",
    "rows_digest",
    "run_load",
    "serial_baseline",
    "step_down",
]
