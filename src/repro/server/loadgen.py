"""Concurrent load generation + byte-identity oracle for the service.

Shared by ``benchmarks/bench_server.py``, ``benchmarks/server_smoke.py``
and the chaos tests: drives N client threads against a
:class:`~repro.server.service.QueryService`, optionally SIGKILLs a live
fragment worker mid-run, and checks every result byte-for-byte against
a serial, cache-off baseline computed up front.

Correctness is the point: a degraded, retried, cache-replayed or
leader/follower-shared execution must return *exactly* the rows the
plain serial engine returns, in the same order.  Results are compared
by SHA-256 over ``repr(rows)`` — any reordering or value drift flips
the hash.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.engine.session import Session
from repro.errors import AdmissionRejectedError, ReproError
from repro.optimizer.config import OptimizerConfig


def rows_digest(rows: list[tuple]) -> str:
    """Order-sensitive fingerprint of a result set."""
    return hashlib.sha256(repr(rows).encode()).hexdigest()


def serial_baseline(
    store, queries: list[str], engine: str = "batch"
) -> dict[str, dict]:
    """Ground truth per query: digest + bytes scanned, computed on a
    fresh serial session with caching off (nothing shared, no reuse)."""
    config = OptimizerConfig(engine=engine, enable_plan_cache=False, workers=1)
    baseline: dict[str, dict] = {}
    with Session(store, config) as session:
        for sql in queries:
            result = session.execute(sql)
            baseline[sql] = {
                "digest": rows_digest(result.rows),
                "bytes_scanned": result.metrics.accounting.bytes_scanned,
                "rows": len(result.rows),
            }
    return baseline


@dataclass
class LoadReport:
    """Everything a benchmark wants to serialize about one run."""

    queries_run: int = 0
    ok: int = 0
    wrong_results: int = 0
    rejected: int = 0
    errors_by_type: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    bytes_scanned: float = 0.0
    baseline_bytes: float = 0.0
    degradations: int = 0
    shared_hits: int = 0
    cache_hits: int = 0
    workers_killed: int = 0
    service_metrics: dict = field(default_factory=dict)

    @property
    def bytes_reduction(self) -> float:
        """Fraction of baseline bytes *not* scanned thanks to sharing."""
        if self.baseline_bytes <= 0:
            return 0.0
        return 1.0 - self.bytes_scanned / self.baseline_bytes

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]

    def as_dict(self) -> dict:
        return {
            "queries_run": self.queries_run,
            "ok": self.ok,
            "wrong_results": self.wrong_results,
            "rejected": self.rejected,
            "errors_by_type": dict(self.errors_by_type),
            "latency_ms": {
                "p50": self.percentile(0.50),
                "p99": self.percentile(0.99),
            },
            "bytes_scanned": self.bytes_scanned,
            "baseline_bytes": self.baseline_bytes,
            "bytes_reduction": self.bytes_reduction,
            "degradations": self.degradations,
            "shared_hits": self.shared_hits,
            "cache_hits": self.cache_hits,
            "workers_killed": self.workers_killed,
            "service_metrics": self.service_metrics,
        }


def run_load(
    service,
    queries: list[str],
    baseline: dict[str, dict],
    clients: int = 8,
    per_client: int = 10,
    seed: int = 7,
    tenants: tuple[str, ...] = ("default",),
    kill_worker_after: int | None = None,
    retry_rejected: bool = True,
) -> LoadReport:
    """Drive ``clients`` threads of ``per_client`` queries each.

    Each client draws queries from ``queries`` with its own seeded RNG
    (deterministic per (seed, client) — the interleaving is not, which
    is the point).  ``kill_worker_after`` SIGKILLs one live fragment
    worker after that many queries have completed service-side —
    mid-run, while fragments are in flight.  Rejected submissions are
    retried after the advertised ``retry_after_ms`` when
    ``retry_rejected`` (clients that give up count as ``rejected``).
    """
    report = LoadReport()
    lock = threading.Lock()
    completed = threading.Semaphore(0)
    stop_killer = threading.Event()

    def client(index: int) -> None:
        rng = random.Random(seed * 1009 + index)
        tenant = tenants[index % len(tenants)]
        for _ in range(per_client):
            sql = rng.choice(queries)
            started = time.monotonic()
            try:
                ticket = None
                for _attempt in range(8 if retry_rejected else 1):
                    try:
                        ticket = service.submit(sql, tenant=tenant)
                        break
                    except AdmissionRejectedError as exc:
                        if not retry_rejected or _attempt == 7:
                            raise
                        time.sleep(min(exc.retry_after_ms, 200.0) / 1000.0)
                assert ticket is not None
                result = ticket.result()
            except ReproError as exc:
                with lock:
                    report.queries_run += 1
                    name = type(exc).__name__
                    if isinstance(exc, AdmissionRejectedError):
                        report.rejected += 1
                    report.errors_by_type[name] = (
                        report.errors_by_type.get(name, 0) + 1
                    )
                completed.release()
                continue
            latency_ms = (time.monotonic() - started) * 1000.0
            expected = baseline[sql]
            metrics = result.metrics
            with lock:
                report.queries_run += 1
                report.latencies_ms.append(latency_ms)
                if rows_digest(result.rows) == expected["digest"]:
                    report.ok += 1
                else:
                    report.wrong_results += 1
                report.bytes_scanned += metrics.accounting.bytes_scanned
                report.baseline_bytes += expected["bytes_scanned"]
                report.degradations += len(metrics.degradations)
                report.shared_hits += metrics.shared_hits
                report.cache_hits += metrics.cache_hits
            completed.release()

    def killer() -> None:
        # Wait until enough queries completed, then SIGKILL one live
        # worker — the self-healing pool must absorb it invisibly.
        for _ in range(kill_worker_after):
            while not completed.acquire(timeout=0.1):
                if stop_killer.is_set():
                    return
        pids = service.worker_pids()
        if not pids:
            return
        victim = sorted(pids.values())[0]
        try:
            os.kill(victim, signal.SIGKILL)
        except OSError:  # pragma: no cover - victim already gone
            return
        with lock:
            report.workers_killed += 1

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    killer_thread = None
    if kill_worker_after is not None:
        killer_thread = threading.Thread(target=killer, daemon=True)
        killer_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop_killer.set()
    if killer_thread is not None:
        killer_thread.join(timeout=5.0)
    report.service_metrics = service.metrics()
    return report
