"""The concurrent multi-tenant query service (DESIGN.md §14).

:class:`QueryService` stacks the pieces of this package on top of
:class:`~repro.engine.session.Session`:

* ``submit`` passes the :class:`~repro.server.admission.AdmissionController`
  (or raises), then enqueues a ticket on a priority queue (tenant
  priority, FIFO within a class);
* dispatcher threads pop tickets, enforce the *queue-wait* deadline
  (:class:`~repro.errors.QueryQueueTimeoutError`) and charge the wait
  against the admission-to-completion deadline, then execute through
  the :class:`~repro.server.degrade.DegradationSupervisor`;
* one :class:`~repro.engine.session.Session` per degradation rung, all
  sharing the store, the plan cache (so cross-query reuse and
  leader/follower shared execution work across rungs and tenants), and
  the self-healing :class:`~repro.engine.parallel.WorkerPool`;
* a maintenance thread runs ``WorkerPool.health_check`` on a short
  period, so crashed or frozen workers are replaced even while the
  dispatchers are blocked inside queries.

The service is synchronous-friendly: ``execute`` is submit + wait, and
``metrics()`` returns a plain-dict snapshot (latency percentiles,
admission/breaker/pool counters, shared-execution totals) that the
benchmarks serialize directly.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.engine.parallel import WorkerPool
from repro.engine.plan_cache import MIB, PlanCache, ShardedPlanCache
from repro.engine.session import QueryResult, Session
from repro.errors import QueryQueueTimeoutError, QueryTimeoutError, ReproError
from repro.optimizer.config import OptimizerConfig
from repro.server.admission import AdmissionController, TenantQuota
from repro.server.degrade import CircuitBreaker, DegradationSupervisor, Rung

#: Dispatcher queue-poll period (seconds): bounds shutdown latency.
_DISPATCH_POLL_S = 0.05

#: Latency reservoir size: percentiles are computed over the most
#: recent this-many completions, so a long-running service neither
#: grows without bound nor sorts an ever-larger list per snapshot.
_LATENCY_RESERVOIR = 4096


@dataclass
class ServiceConfig:
    """Tunables for :class:`QueryService`."""

    #: Base optimizer configuration; the top ladder rung runs exactly
    #: this, lower rungs are derived by
    #: :meth:`repro.server.degrade.Rung.config`.
    base: OptimizerConfig = field(
        default_factory=lambda: OptimizerConfig(enable_plan_cache=True)
    )
    #: Dispatcher (query-executing) threads.
    dispatchers: int = 4
    #: Admission queue bound (global, across tenants).
    max_queue_depth: int = 64
    #: Longest a ticket may wait in the queue before it is dropped
    #: with :class:`~repro.errors.QueryQueueTimeoutError`.
    queue_timeout_ms: float = 10_000.0
    #: Admission-to-completion deadline per query (None = unlimited).
    #: Queue wait is charged against it, so a query that waited 2s of
    #: a 10s budget gets 8s of execution.
    query_timeout_ms: float | None = 60_000.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: Circuit-breaker shape shared by every rung.
    breaker_window_s: float = 30.0
    breaker_failure_threshold: float = 0.5
    breaker_min_samples: int = 5
    breaker_cooldown_s: float = 5.0
    #: Worker-pool health-check period (0 disables the thread).
    health_interval_s: float = 0.25
    #: Worker heartbeat silence tolerated before a worker is declared
    #: frozen and killed.
    heartbeat_timeout_s: float = 2.0


class QueryTicket:
    """Handle for one submitted query; resolves to a result or error."""

    __slots__ = (
        "sql",
        "tenant",
        "priority",
        "seq",
        "enqueued_at",
        "_done",
        "_result",
        "_error",
    )

    def __init__(self, sql: str, tenant: str, priority: int, seq: int):
        self.sql = sql
        self.tenant = tenant
        self.priority = priority
        self.seq = seq
        self.enqueued_at = time.monotonic()
        self._done = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    def __lt__(self, other: "QueryTicket") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)

    def resolve(self, result: QueryResult) -> None:
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the query finishes; re-raises its error."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"query still running after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class _ServiceMetrics:
    """Service-level counters + latency reservoir, all under one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.queue_timeouts = 0
        self.degradations = 0
        self.shared_hits = 0
        self.shared_fanout = 0
        self.cache_hits = 0
        self.bytes_scanned = 0.0
        self.latencies_ms: deque[float] = deque(maxlen=_LATENCY_RESERVOIR)
        self.latency_max_ms = 0.0
        self.errors_by_type: dict[str, int] = {}

    def record_success(self, latency_ms: float, metrics) -> None:
        with self._lock:
            self.completed += 1
            self.latencies_ms.append(latency_ms)
            if latency_ms > self.latency_max_ms:
                self.latency_max_ms = latency_ms
            self.degradations += len(metrics.degradations)
            self.shared_hits += metrics.shared_hits
            self.shared_fanout += metrics.shared_fanout
            self.cache_hits += metrics.cache_hits
            self.bytes_scanned += metrics.accounting.bytes_scanned

    def record_failure(self, error: BaseException) -> None:
        name = type(error).__name__
        with self._lock:
            self.failed += 1
            if isinstance(error, QueryQueueTimeoutError):
                self.queue_timeouts += 1
            self.errors_by_type[name] = self.errors_by_type.get(name, 0) + 1

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    @staticmethod
    def _percentile(sorted_values: list[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
        return sorted_values[index]

    def snapshot(self) -> dict:
        with self._lock:
            latencies = sorted(self.latencies_ms)
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "queue_timeouts": self.queue_timeouts,
                "degradations": self.degradations,
                "shared_hits": self.shared_hits,
                "shared_fanout": self.shared_fanout,
                "cache_hits": self.cache_hits,
                "bytes_scanned": self.bytes_scanned,
                "errors_by_type": dict(self.errors_by_type),
                "latency_ms": {
                    "p50": self._percentile(latencies, 0.50),
                    "p99": self._percentile(latencies, 0.99),
                    "max": self.latency_max_ms,
                },
            }


class QueryService:
    """A concurrent, admission-controlled query service over one store."""

    def __init__(self, store, config: ServiceConfig | None = None):
        self.store = store
        self.config = config or ServiceConfig()
        base = self.config.base
        #: One shared cross-query cache for every rung/session: shared
        #: execution and reuse work across tenants by design (results
        #: are keyed by plan fingerprint, not by who asked).
        self.plan_cache: PlanCache | ShardedPlanCache | None = None
        if base.enable_plan_cache:
            budget = base.cache_budget_mb * MIB
            if base.cache_shards > 1:
                self.plan_cache = ShardedPlanCache(budget, shards=base.cache_shards)
            else:
                self.plan_cache = PlanCache(budget)
        #: One shared self-healing pool for every parallel rung.
        self.pool: WorkerPool | None = None
        if base.workers > 1:
            self.pool = WorkerPool(
                store,
                base.workers,
                heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            default_quota=self.config.default_quota,
            quotas=self.config.quotas,
        )
        service_config = self.config

        def _breaker() -> CircuitBreaker:
            return CircuitBreaker(
                window_s=service_config.breaker_window_s,
                failure_threshold=service_config.breaker_failure_threshold,
                min_samples=service_config.breaker_min_samples,
                cooldown_s=service_config.breaker_cooldown_s,
            )

        self.supervisor = DegradationSupervisor(
            Rung(
                engine=base.engine,
                parallel=base.workers > 1,
                cache=base.enable_plan_cache,
            ),
            breaker_factory=_breaker,
        )
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._queue: queue_module.PriorityQueue = queue_module.PriorityQueue()
        self._seq = itertools.count()
        self._metrics = _ServiceMetrics()
        self._stop = threading.Event()
        #: Fences ``submit`` against ``close``: the stop flag is only
        #: set (and checked) under this lock, so a ticket can never be
        #: enqueued after close() drained the queue — it would hang its
        #: caller forever and leak the tenant's admission slot.
        self._submit_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        for i in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop, name=f"repro-dispatch-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if self.pool is not None and self.config.health_interval_s > 0:
            thread = threading.Thread(
                target=self._maintenance_loop, name="repro-maintenance", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # -- public API --------------------------------------------------------

    def submit(self, sql: str, tenant: str = "default") -> QueryTicket:
        """Admit + enqueue one query; raises
        :class:`~repro.errors.AdmissionRejectedError` when shed."""
        with self._submit_lock:
            if self._stop.is_set():
                raise ReproError("the query service is closed")
            self._metrics.record_submit()
            quota = self.admission.admit(tenant)  # raises on rejection
            ticket = QueryTicket(sql, tenant, quota.priority, next(self._seq))
            self._queue.put(ticket)
        return ticket

    def execute(self, sql: str, tenant: str = "default") -> QueryResult:
        """Submit and wait; the blocking convenience entry point."""
        return self.submit(sql, tenant=tenant).result()

    def metrics(self) -> dict:
        """A point-in-time snapshot of every service-level counter."""
        snap = self._metrics.snapshot()
        snap["admission"] = {
            "admitted": self.admission.stats.admitted,
            "rejected": self.admission.stats.rejected,
            "rejected_queue_full": self.admission.stats.rejected_queue_full,
            "rejected_rate_limited": self.admission.stats.rejected_rate_limited,
            "rejected_quota": self.admission.stats.rejected_quota,
        }
        snap["breakers"] = self.supervisor.breaker_states()
        if self.pool is not None:
            snap["pool"] = {
                "respawns": self.pool.respawns,
                "rebuilds": self.pool.rebuilds,
                "hung_workers_killed": self.pool.hung_workers_killed,
                "workers": len(self.pool.worker_ids),
            }
        if self.plan_cache is not None:
            stats = self.plan_cache.stats
            snap["plan_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "stale_rejected": stats.stale_rejected,
                "inflight_leaders": self.plan_cache.inflight.leaders,
                "inflight_followers": self.plan_cache.inflight.followers,
            }
        return snap

    def worker_pids(self) -> dict[int, int]:
        """Live fragment-worker pids (chaos tests kill these)."""
        return {} if self.pool is None else self.pool.worker_pids()

    def health_check(self) -> list[int]:
        """Run one pool health check now; returns replaced worker ids."""
        return [] if self.pool is None else self.pool.health_check()

    def close(self) -> None:
        """Stop dispatchers, fail queued tickets, release resources."""
        with self._submit_lock:
            if self._stop.is_set():
                return
            self._stop.set()
        # Any submit that won the lock race enqueued before the stop
        # flag was set, so the drain below is guaranteed to see it.
        for thread in self._threads:
            thread.join(timeout=10.0)
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue_module.Empty:
                break
            self.admission.on_dequeue()
            self.admission.release(ticket.tenant)
            ticket.fail(ReproError("the query service is closed"))
        with self._sessions_lock:
            sessions, self._sessions = dict(self._sessions), {}
        for session in sessions.values():
            session.close()
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _session_for(self, rung: Rung) -> Session:
        with self._sessions_lock:
            session = self._sessions.get(rung.name)
            if session is None:
                session = Session(
                    self.store,
                    rung.config(self.config.base),
                    worker_pool=self.pool if rung.parallel else None,
                    plan_cache=self.plan_cache,
                )
                self._sessions[rung.name] = session
            return session

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                ticket = self._queue.get(timeout=_DISPATCH_POLL_S)
            except queue_module.Empty:
                continue
            self.admission.on_dequeue()
            try:
                self._run_ticket(ticket)
            finally:
                self.admission.release(ticket.tenant)

    def _run_ticket(self, ticket: QueryTicket) -> None:
        wait_ms = (time.monotonic() - ticket.enqueued_at) * 1000.0
        config = self.config
        if wait_ms > config.queue_timeout_ms:
            error = QueryQueueTimeoutError(
                f"query waited {wait_ms:.0f}ms in the admission queue "
                f"(limit {config.queue_timeout_ms:.0f}ms)"
            )
            self._metrics.record_failure(error)
            ticket.fail(error)
            return
        if config.query_timeout_ms is not None:
            if config.query_timeout_ms - wait_ms <= 0.0:
                error = QueryQueueTimeoutError(
                    f"queue wait ({wait_ms:.0f}ms) consumed the whole "
                    f"query deadline ({config.query_timeout_ms:.0f}ms)"
                )
                self._metrics.record_failure(error)
                ticket.fail(error)
                return

        def run(rung: Rung, sql: str) -> QueryResult:
            # The admission-to-completion budget is recomputed per rung
            # so ladder retries are charged for the time already spent.
            remaining_ms: float | None = None
            if config.query_timeout_ms is not None:
                elapsed = (time.monotonic() - ticket.enqueued_at) * 1000.0
                remaining_ms = config.query_timeout_ms - elapsed
                if remaining_ms <= 0.0:
                    raise QueryTimeoutError(
                        f"query deadline ({config.query_timeout_ms:.0f}ms) "
                        f"exhausted after {elapsed:.0f}ms"
                    )
            return self._session_for(rung).execute(sql, timeout_ms=remaining_ms)

        try:
            result = self.supervisor.execute(run, ticket.sql)
        except BaseException as exc:  # noqa: BLE001 - delivered to the caller
            self._metrics.record_failure(exc)
            ticket.fail(exc)
            return
        result.metrics.queue_wait_ms = wait_ms
        latency_ms = (time.monotonic() - ticket.enqueued_at) * 1000.0
        self._metrics.record_success(latency_ms, result.metrics)
        ticket.resolve(result)

    def _maintenance_loop(self) -> None:
        interval = self.config.health_interval_s
        while not self._stop.wait(interval):
            pool = self.pool
            if pool is None:
                return
            try:
                pool.health_check()
            except Exception:  # pragma: no cover - keep the nurse alive
                pass
