"""Admission control and per-tenant quotas for the query service.

The service boundary of DESIGN.md §14: every query passes through the
:class:`AdmissionController` *before* any parsing or planning happens,
so an overloaded service sheds work at the cheapest possible point.
Three independent gates, checked in order:

1. **Global queue depth** — the admission queue is bounded; a full
   queue rejects immediately (load shedding) with a ``retry_after_ms``
   that grows with queue pressure, the 503-with-Retry-After of a real
   query service.
2. **Per-tenant rate** — a token bucket per tenant (rate + burst), so
   one chatty dashboard cannot starve the others no matter how fast it
   resubmits.
3. **Per-tenant in-flight budget** — queued + running queries per
   tenant are capped, bounding the damage a single tenant's slow
   queries can do to shared memory and worker capacity.

All decisions are made under one lock with an injectable clock, so
tests drive the bucket and the queue deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import AdmissionRejectedError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; the controller's defaults are deliberately
    generous so single-tenant embedders never notice admission."""

    #: Queued + running queries allowed at once for this tenant.
    max_in_flight: int = 16
    #: Token-bucket refill rate (sustained queries per second).
    rate_per_s: float = 200.0
    #: Token-bucket capacity (burst size).
    burst: int = 64
    #: Dispatch priority: lower runs first (0 = interactive).
    priority: int = 1


class TokenBucket:
    """A standard token bucket with an injectable clock."""

    def __init__(self, rate_per_s: float, burst: int, clock=time.monotonic):
        self.rate = max(rate_per_s, 1e-9)
        self.burst = float(max(burst, 1))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def try_acquire(self) -> float:
        """Take one token; returns 0.0 on success, otherwise the
        milliseconds until a token will be available."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate * 1000.0


@dataclass
class AdmissionStats:
    admitted: int = 0
    rejected_queue_full: int = 0
    rejected_rate_limited: int = 0
    rejected_quota: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_rate_limited
            + self.rejected_quota
        )


class AdmissionController:
    """Gatekeeper in front of the service's dispatch queue.

    ``admit`` either reserves a slot (call ``release`` exactly once
    when the query finishes, however it finishes) or raises
    :class:`~repro.errors.AdmissionRejectedError`; ``on_dequeue`` tells
    the controller a query left the queue for execution, which only
    affects the queue-depth gate.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        shed_retry_ms: float = 100.0,
        clock=time.monotonic,
    ):
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota or TenantQuota()
        self._quotas = dict(quotas or {})
        self.shed_retry_ms = shed_retry_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._queued = 0
        self._in_flight: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self.stats = AdmissionStats()

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def admit(self, tenant: str) -> TenantQuota:
        """Reserve queue + tenant capacity for one query (or shed it)."""
        quota = self.quota(tenant)
        with self._lock:
            if self._queued >= self.max_queue_depth:
                self.stats.rejected_queue_full += 1
                retry = self.shed_retry_ms * (
                    1.0 + self._queued / max(1, self.max_queue_depth)
                )
                raise AdmissionRejectedError(
                    f"admission queue is full ({self._queued} queued)",
                    retry_after_ms=retry,
                )
            if self._in_flight.get(tenant, 0) >= quota.max_in_flight:
                self.stats.rejected_quota += 1
                raise AdmissionRejectedError(
                    f"tenant {tenant!r} is at its in-flight limit "
                    f"({quota.max_in_flight})",
                    retry_after_ms=self.shed_retry_ms,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    quota.rate_per_s, quota.burst, clock=self._clock
                )
            wait_ms = bucket.try_acquire()
            if wait_ms > 0.0:
                self.stats.rejected_rate_limited += 1
                raise AdmissionRejectedError(
                    f"tenant {tenant!r} is over its rate limit "
                    f"({quota.rate_per_s:g}/s)",
                    retry_after_ms=wait_ms,
                )
            self._queued += 1
            self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
            self.stats.admitted += 1
            return quota

    def on_dequeue(self) -> None:
        """A query left the admission queue for execution."""
        with self._lock:
            self._queued = max(0, self._queued - 1)

    def release(self, tenant: str) -> None:
        """The query finished (any outcome); free its tenant slot."""
        with self._lock:
            count = self._in_flight.get(tenant, 0) - 1
            if count > 0:
                self._in_flight[tenant] = count
            else:
                self._in_flight.pop(tenant, None)

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    def in_flight(self, tenant: str) -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)
