"""Scan accounting: the pay-per-byte-scanned meter.

Athena bills per TB scanned from S3, and the paper reports "bytes read"
as a first-class experimental axis (Figure 2).  :class:`ScanAccounting`
is the single place all scans report to: every partition column chunk a
query reads adds its encoded size (and row count) here, broken down per
table, so benchmarks can report exact data-read ratios between plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ScanAccounting:
    """Accumulates bytes/rows read by scans during one query execution."""

    bytes_scanned: float = 0.0
    rows_scanned: int = 0
    partitions_read: int = 0
    bytes_by_table: dict[str, float] = field(default_factory=dict)
    scans_by_table: dict[str, int] = field(default_factory=dict)

    def record_chunk(self, table: str, nbytes: float) -> None:
        """One column chunk of one partition was read."""
        self.bytes_scanned += nbytes
        self.bytes_by_table[table] = self.bytes_by_table.get(table, 0.0) + nbytes

    def record_partition(self, rows: int = 0) -> None:
        self.partitions_read += 1
        self.rows_scanned += rows

    def record_scan(self, table: str) -> None:
        """A scan operator started reading ``table``."""
        self.scans_by_table[table] = self.scans_by_table.get(table, 0) + 1

    def reset(self) -> None:
        self.bytes_scanned = 0.0
        self.rows_scanned = 0
        self.partitions_read = 0
        self.bytes_by_table.clear()
        self.scans_by_table.clear()

    def snapshot(self) -> "ScanAccounting":
        """An independent copy of the current counters."""
        copy = ScanAccounting(
            self.bytes_scanned, self.rows_scanned, self.partitions_read
        )
        copy.bytes_by_table = dict(self.bytes_by_table)
        copy.scans_by_table = dict(self.scans_by_table)
        return copy


class TeeAccounting:
    """Forwards every record to two accountings.

    The plan cache's population hook uses this to meter what a subplan
    scans (the bytes a later replay will save) while still charging the
    query's main accounting — population must never make a query look
    cheaper than it was.  Nesting tees (a populated subplan inside a
    populated subplan) chains naturally: the inner primary is the outer
    tee.
    """

    def __init__(self, primary, secondary) -> None:
        self.primary = primary
        self.secondary = secondary

    def record_chunk(self, table: str, nbytes: float) -> None:
        self.primary.record_chunk(table, nbytes)
        self.secondary.record_chunk(table, nbytes)

    def record_partition(self, rows: int = 0) -> None:
        self.primary.record_partition(rows)
        self.secondary.record_partition(rows)

    def record_scan(self, table: str) -> None:
        self.primary.record_scan(table)
        self.secondary.record_scan(table)
