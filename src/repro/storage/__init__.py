"""Columnar partitioned storage with scan accounting (S3+Parquet stand-in)."""

from repro.storage.accounting import ScanAccounting
from repro.storage.columnar import (
    ColumnChunk,
    Partition,
    Store,
    StoredTable,
    chunk_checksum,
)
from repro.storage.faults import FaultInjector, RetryPolicy

__all__ = [
    "ScanAccounting",
    "ColumnChunk",
    "Partition",
    "Store",
    "StoredTable",
    "chunk_checksum",
    "FaultInjector",
    "RetryPolicy",
]
