"""Deterministic fault injection + retry policy for the object store.

The paper's substrate is S3, where transient read failures, stragglers
and (rarely) corrupt objects are routine; Athena's engine retries and
degrades gracefully instead of failing whole query batches.  This
module gives the in-memory :class:`~repro.storage.columnar.Store` the
same failure surface, *deterministically*:

* :class:`FaultInjector` decides per read **site** — a
  ``(table, partition_index, column)`` triple — whether reads of that
  chunk fail transiently, stall, or are bit-flip corrupted.  Every
  decision is a pure function of ``(seed, site)``, so the same seed
  always produces the same chaos and a test failure replays exactly.
* :class:`RetryPolicy` bounds attempts with exponential backoff and
  *deterministic* jitter (again a pure function of seed + site +
  attempt), with an injectable ``sleep`` so tests run at full speed.

A faulty site fails its first ``n`` read attempts (``n`` derived from
the site hash, bounded by ``max_failures``) and then succeeds — so any
retry budget ``>= max_failures`` makes every query identical to a
fault-free run, while a zero budget surfaces a structured
:class:`~repro.errors.TransientReadError` on first contact.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import TransientReadError

#: A read site: (table, partition index, column), all lowercase.
Site = tuple[str, int, str]


def _unit(seed: int, *key: object) -> float:
    """Deterministic uniform value in [0, 1) from ``(seed, *key)``."""
    digest = hashlib.sha256(repr((seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _draw(seed: int, *key: object) -> int:
    """Deterministic 64-bit integer from ``(seed, *key)``."""
    digest = hashlib.sha256(repr((seed,) + key).encode()).digest()
    return int.from_bytes(digest[8:16], "big")


def bit_flip(value: object) -> object:
    """The corrupted form of one stored value (a single flipped bit
    where the type allows, a sentinel change otherwise)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        return struct.unpack("<d", struct.pack("<Q", bits ^ 1))[0]
    if isinstance(value, str):
        if not value:
            return "\x01"
        return chr(ord(value[0]) ^ 1) + value[1:]
    if value is None:
        return 0
    return value


@dataclass
class FaultStats:
    """Cumulative counters over the injector's lifetime."""

    transient_faults: int = 0
    stalls: int = 0
    corruptions: int = 0

    @property
    def total(self) -> int:
        return self.transient_faults + self.stalls + self.corruptions


class FaultInjector:
    """Seeded chaos source wrapping ``Store`` chunk reads and ``get``.

    ``fault_rate`` is the fraction of read sites that fail transiently
    (each such site fails its first 1..``max_failures`` attempts, then
    succeeds).  ``stall_rate``/``stall_ms`` add latency stalls the same
    way.  ``tables``/``columns`` restrict the blast radius by pattern.
    Corruption is targeted explicitly via :meth:`corrupt_chunk` — it is
    a one-shot, in-place bit flip of a stored value, detected by the
    chunk checksum on the next read.
    """

    def __init__(
        self,
        fault_rate: float = 0.0,
        seed: int = 0,
        *,
        max_failures: int = 2,
        stall_rate: float = 0.0,
        stall_ms: float = 0.0,
        tables: Iterable[str] | None = None,
        columns: Iterable[str] | None = None,
        fail_gets: Iterable[str] = (),
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= stall_rate <= 1.0:
            raise ValueError("stall_rate must be in [0, 1]")
        if max_failures < 1:
            raise ValueError("max_failures must be at least 1")
        self.fault_rate = fault_rate
        self.seed = seed
        self.max_failures = max_failures
        self.stall_rate = stall_rate
        self.stall_ms = stall_ms
        self.tables = None if tables is None else frozenset(t.lower() for t in tables)
        self.columns = None if columns is None else frozenset(c.lower() for c in columns)
        self.fail_gets = frozenset(t.lower() for t in fail_gets)
        self.sleep = sleep
        self.stats = FaultStats()
        #: Counter updates must not lose increments when concurrent
        #: server queries share one injector on one store.
        self._stats_lock = threading.Lock()
        self._corrupt_targets: set[Site] = set()

    # -- pattern matching -------------------------------------------------

    def matches(self, site: Site) -> bool:
        table, _, column = site
        if self.tables is not None and table not in self.tables:
            return False
        if self.columns is not None and column not in self.columns:
            return False
        return True

    def failures_at(self, site: Site) -> int:
        """How many consecutive attempts fail at ``site`` (0 = healthy)."""
        if self.fault_rate <= 0.0 or not self.matches(site):
            return 0
        if _unit(self.seed, "fault", site) >= self.fault_rate:
            return 0
        return 1 + _draw(self.seed, "failures", site) % self.max_failures

    def stalls_at(self, site: Site) -> bool:
        if self.stall_rate <= 0.0 or self.stall_ms <= 0.0 or not self.matches(site):
            return False
        return _unit(self.seed, "stall", site) < self.stall_rate

    # -- corruption -------------------------------------------------------

    def corrupt_chunk(self, table: str, partition: int, column: str) -> None:
        """Schedule a one-shot bit flip of ``table``'s ``column`` chunk
        in partition ``partition``, applied on its next read."""
        self._corrupt_targets.add((table.lower(), partition, column.lower()))

    # -- hooks called by the Store ---------------------------------------

    def on_chunk_read(self, site: Site, chunk, attempt: int, metrics=None) -> None:
        """Called before each chunk read attempt; may stall, corrupt the
        stored chunk in place, or raise :class:`TransientReadError`."""
        if site in self._corrupt_targets and chunk.values:
            self._corrupt_targets.discard(site)
            index = _draw(self.seed, "victim", site) % len(chunk.values)
            chunk.values[index] = bit_flip(chunk.values[index])
            # The stored list changed under any cached NumPy view; drop
            # it so the next verification re-checks the real values.
            chunk.invalidate_vector()
            with self._stats_lock:
                self.stats.corruptions += 1
            if metrics is not None:
                metrics.faults_injected += 1
        if self.stalls_at(site) and attempt == 0:
            with self._stats_lock:
                self.stats.stalls += 1
            if metrics is not None:
                metrics.faults_injected += 1
            self.sleep(self.stall_ms / 1000.0)
        failures = self.failures_at(site)
        if attempt < failures:
            with self._stats_lock:
                self.stats.transient_faults += 1
            if metrics is not None:
                metrics.faults_injected += 1
            table, partition, column = site
            raise TransientReadError(
                f"injected transient read failure on {table}.{column} "
                f"partition {partition} (attempt {attempt + 1} of "
                f"{failures} failing)"
            )

    def on_get(self, table: str, metrics=None) -> None:
        """Called by ``Store.get``; fails lookups of tables listed in
        ``fail_gets`` (table-level outage, e.g. a listing error)."""
        if table.lower() in self.fail_gets:
            with self._stats_lock:
                self.stats.transient_faults += 1
            if metrics is not None:
                metrics.faults_injected += 1
            raise TransientReadError(
                f"injected transient failure opening table {table!r}"
            )


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_retries`` counts retries *after* the first attempt; 0 disables
    retrying.  Delay for retry ``attempt`` (0-based) is
    ``base_delay_ms * multiplier**attempt`` capped at ``max_delay_ms``,
    scaled by a jitter factor in ``[1 - jitter, 1 + jitter]`` that is a
    pure function of ``(seed, site, attempt)`` — reproducible, but
    de-synchronized across sites like randomized jitter would be.
    ``sleep`` is injectable so tests pay no wall-clock cost.
    """

    max_retries: int = 3
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    max_delay_ms: float = 50.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_ms(self, attempt: int, site: object = ()) -> float:
        delay = min(self.base_delay_ms * self.multiplier**attempt, self.max_delay_ms)
        if self.jitter:
            swing = 2.0 * _unit(self.seed, "retry", site, attempt) - 1.0
            delay *= 1.0 + self.jitter * swing
        return delay

    def backoff(self, attempt: int, site: object = ()) -> None:
        """Sleep the (deterministic) delay before retry ``attempt``."""
        delay = self.delay_ms(attempt, site)
        if delay > 0:
            self.sleep(delay / 1000.0)


#: Retrying disabled: first transient fault surfaces to the caller.
NO_RETRY = RetryPolicy(max_retries=0, base_delay_ms=0.0, jitter=0.0)
