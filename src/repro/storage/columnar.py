"""Columnar partitioned storage — the stand-in for S3 + Parquet.

Tables are stored as a list of partitions; each partition holds one
column chunk per column.  The layout mirrors the paper's setup: the
large fact tables are range-partitioned by their date surrogate key
("partitioned the largest 7 tables by appropriate date columns"),
dimension tables are single-partition.

Reading is columnar and metered: a scan declares which columns it
needs, and only those chunks are charged to the
:class:`~repro.storage.accounting.ScanAccounting` — so a plan rewrite
that drops a duplicate scan, or prunes columns/partitions, directly
shows up as fewer bytes scanned, exactly the Figure-2 axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.algebra.types import DataType, encoded_bytes
from repro.catalog.catalog import Catalog, TableDef
from repro.errors import CatalogError


@dataclass
class ColumnChunk:
    """One column's values within one partition."""

    name: str
    dtype: DataType
    values: list
    encoded_size: float
    min_value: object | None = None
    max_value: object | None = None

    @classmethod
    def build(
        cls, name: str, dtype: DataType, values: Sequence, avg_string_bytes: float | None = None
    ) -> "ColumnChunk":
        per_value = encoded_bytes(dtype, avg_string_bytes)
        non_null = [v for v in values if v is not None]
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
        return cls(name, dtype, list(values), per_value * len(values), min_value, max_value)


@dataclass
class Partition:
    """A horizontal slice of a table: one chunk per column."""

    chunks: dict[str, ColumnChunk]
    row_count: int

    def chunk(self, name: str) -> ColumnChunk:
        try:
            return self.chunks[name.lower()]
        except KeyError:
            raise CatalogError(f"partition has no column {name!r}") from None


class StoredTable:
    """All partitions of one table."""

    def __init__(self, definition: TableDef, partitions: list[Partition]):
        self.definition = definition
        self.partitions = partitions

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.partitions)

    @classmethod
    def from_columns(
        cls,
        definition: TableDef,
        data: dict[str, Sequence],
        partition_rows: int | None = None,
    ) -> "StoredTable":
        """Build a stored table from column vectors.

        If the definition has a partition column, rows are split into
        contiguous runs of equal partition-key *ranges*; otherwise
        ``partition_rows`` (or a single partition) chunks the data.
        Data is assumed sorted by the partition column when one exists,
        which the TPC-DS generator guarantees.
        """
        lower = {k.lower(): list(v) for k, v in data.items()}
        names = [c.name.lower() for c in definition.columns]
        missing = [n for n in names if n not in lower]
        if missing:
            raise CatalogError(f"table {definition.name!r} missing columns {missing}")
        total = len(lower[names[0]]) if names else 0
        for n in names:
            if len(lower[n]) != total:
                raise CatalogError(f"column {n!r} length mismatch in {definition.name!r}")

        if partition_rows is None or partition_rows <= 0 or total == 0:
            boundaries = [(0, total)]
        else:
            boundaries = [
                (start, min(start + partition_rows, total))
                for start in range(0, total, partition_rows)
            ]

        partitions: list[Partition] = []
        for start, end in boundaries:
            chunks: dict[str, ColumnChunk] = {}
            for cdef in definition.columns:
                key = cdef.name.lower()
                chunks[key] = ColumnChunk.build(
                    cdef.name, cdef.dtype, lower[key][start:end], cdef.avg_string_bytes
                )
            partitions.append(Partition(chunks, end - start))
        return cls(definition, partitions)

    def total_bytes(self, columns: Iterable[str] | None = None) -> float:
        """Encoded size of the table (optionally a column subset)."""
        wanted = None if columns is None else {c.lower() for c in columns}
        total = 0.0
        for part in self.partitions:
            for key, chunk in part.chunks.items():
                if wanted is None or key in wanted:
                    total += chunk.encoded_size
        return total


class Store:
    """In-memory object store holding all tables for a session."""

    def __init__(self) -> None:
        self._tables: dict[str, StoredTable] = {}

    def put(self, table: StoredTable) -> None:
        self._tables[table.name.lower()] = table

    def get(self, name: str) -> StoredTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no stored data for table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def load_catalog(self, catalog: Catalog) -> None:
        """Register every stored table's definition (with live row
        counts and per-column statistics) into ``catalog``."""
        for stored in self._tables.values():
            self.register_table(stored.name, catalog)

    def register_table(self, name: str, catalog: Catalog) -> None:
        """(Re-)register one stored table into ``catalog``.

        Also the reload path: after replacing a table's data via
        :meth:`put`, re-registering bumps the catalog's table version
        (see :meth:`~repro.catalog.catalog.Catalog.register`), which
        invalidates any cross-query cache entries built over the old
        data.
        """
        from repro.catalog.catalog import ColumnStats

        stored = self.get(name)
        definition = stored.definition
        catalog.register(
            TableDef(
                definition.name,
                definition.columns,
                definition.primary_key,
                definition.partition_column,
                stored.row_count,
            )
        )
        total = stored.row_count
        for cdef in definition.columns:
            distinct: set = set()
            nulls = 0
            min_value = max_value = None
            for part in stored.partitions:
                chunk = part.chunk(cdef.name)
                for value in chunk.values:
                    if value is None:
                        nulls += 1
                    else:
                        distinct.add(value)
                if chunk.min_value is not None:
                    min_value = (
                        chunk.min_value
                        if min_value is None
                        else min(min_value, chunk.min_value)
                    )
                    max_value = (
                        chunk.max_value
                        if max_value is None
                        else max(max_value, chunk.max_value)
                    )
            catalog.set_column_stats(
                definition.name,
                cdef.name,
                ColumnStats(
                    ndv=len(distinct),
                    null_fraction=nulls / total if total else 0.0,
                    min_value=min_value,
                    max_value=max_value,
                ),
            )

    def scan_blocks(
        self,
        table_name: str,
        columns: Sequence[str],
        accounting,
        partition_predicate: Callable[[ColumnChunk], bool] | None = None,
        block_rows: int | None = None,
    ) -> Iterator[tuple[list[list], int]]:
        """Columnar fast path: yield ``(column_vectors, row_count)``
        blocks of the requested columns, charging accounting.

        ``partition_predicate`` receives the *partition column's* chunk
        (with min/max) and returns False to prune the whole partition —
        pruned partitions are never charged.  With ``block_rows`` set,
        partitions larger than the limit are sliced into consecutive
        blocks (never spanning a partition boundary); accounting is
        identical either way, since it is charged per partition chunk.
        Callers must treat the yielded vectors as immutable: small
        partitions hand out the stored chunk lists by reference.
        """
        stored = self.get(table_name)
        accounting.record_scan(stored.name)
        part_col = stored.definition.partition_column
        for part in stored.partitions:
            if partition_predicate is not None and part_col is not None:
                if not partition_predicate(part.chunk(part_col)):
                    continue
            accounting.record_partition(part.row_count)
            vectors = []
            for name in columns:
                chunk = part.chunk(name)
                accounting.record_chunk(stored.name, chunk.encoded_size)
                vectors.append(chunk.values)
            total = part.row_count
            if block_rows is None or total <= block_rows:
                yield vectors, total
            else:
                for start in range(0, total, block_rows):
                    end = min(start + block_rows, total)
                    yield [v[start:end] for v in vectors], end - start

    def scan(
        self,
        table_name: str,
        columns: Sequence[str],
        accounting,
        partition_predicate: Callable[[ColumnChunk], bool] | None = None,
    ) -> Iterator[tuple]:
        """Stream rows of the requested columns, charging accounting.

        Row-tuple view over :meth:`scan_blocks` (same pruning, same
        accounting by construction).
        """
        for vectors, count in self.scan_blocks(
            table_name, columns, accounting, partition_predicate
        ):
            if vectors:
                yield from zip(*vectors)
            else:
                yield from (() for _ in range(count))
