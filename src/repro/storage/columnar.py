"""Columnar partitioned storage — the stand-in for S3 + Parquet.

Tables are stored as a list of partitions; each partition holds one
column chunk per column.  The layout mirrors the paper's setup: the
large fact tables are range-partitioned by their date surrogate key
("partitioned the largest 7 tables by appropriate date columns"),
dimension tables are single-partition.

Reading is columnar and metered: a scan declares which columns it
needs, and only those chunks are charged to the
:class:`~repro.storage.accounting.ScanAccounting` — so a plan rewrite
that drops a duplicate scan, or prunes columns/partitions, directly
shows up as fewer bytes scanned, exactly the Figure-2 axis.

Reads are also *fault tolerant*: every chunk carries a build-time
content checksum that is re-verified on read (corruption raises
:class:`~repro.errors.DataCorruptionError` and evicts any plan-cache
entries derived from the table), and an optional
:class:`~repro.storage.faults.FaultInjector` on the store can make
reads fail transiently — absorbed by the caller's retry policy without
double-charging accounting, since a chunk is charged only once its
read succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import sleep as _sleep
from typing import Callable, Iterable, Iterator, Sequence

from repro.algebra.types import DataType, encoded_bytes
from repro.catalog.catalog import Catalog, TableDef
from repro.errors import CatalogError, DataCorruptionError, TransientReadError

try:  # pragma: no cover - the image bakes numpy in
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def chunk_checksum(values: Sequence) -> int:
    """Content digest of a column vector.

    Python's tuple hash: C-speed, stable within a process (checksums
    never persist across processes), and sensitive to any single-value
    change — which is exactly the bit-flip corruption model the fault
    injector implements.  An ndarray hashes its raw buffer directly —
    no per-element boxing.
    """
    if _np is not None and isinstance(values, _np.ndarray):
        return hash(values.tobytes())
    return hash(tuple(values))


@dataclass
class ColumnChunk:
    """One column's values within one partition."""

    name: str
    dtype: DataType
    values: list
    encoded_size: float
    min_value: object | None = None
    max_value: object | None = None
    #: Build-time content digest; None disables verification (chunks
    #: constructed directly in tests).
    checksum: int | None = None
    #: Lazily-built NumPy view of ``values`` (see :meth:`vector`), its
    #: CRC at build time, and the build state ("unbuilt" = not yet
    #: attempted, "none" = ineligible values, "built").  Excluded from
    #: equality/repr: caches, not content.
    _vector: object = field(default=None, compare=False, repr=False)
    _vector_crc: int | None = field(default=None, compare=False, repr=False)
    _vector_state: str = field(default="unbuilt", compare=False, repr=False)

    @classmethod
    def build(
        cls, name: str, dtype: DataType, values: Sequence, avg_string_bytes: float | None = None
    ) -> "ColumnChunk":
        per_value = encoded_bytes(dtype, avg_string_bytes)
        # Single pass: min/max without materializing a non-null copy,
        # and no defensive re-copy when the caller hands us a fresh
        # list (both construction paths do — build takes ownership).
        if type(values) is not list:
            values = list(values)
        min_value = max_value = None
        for v in values:
            if v is None:
                continue
            if min_value is None:
                min_value = max_value = v
            elif v < min_value:
                min_value = v
            elif v > max_value:
                max_value = v
        return cls(
            name,
            dtype,
            values,
            per_value * len(values),
            min_value,
            max_value,
            chunk_checksum(values),
        )

    def vector(self):
        """The chunk's NumPy-backed vector (a
        :class:`~repro.engine.vectors.NumpyVector`), or None when the
        values are ineligible (mixed types, strings, huge ints) or
        NumPy is unavailable/disabled.

        Built lazily on first request and cached; callers must only
        ask *after* a verified read (``Store._read_chunk_values``), so
        the cached arrays — and the CRC taken over them at build time —
        are known-good.  Anything that mutates ``values`` afterwards
        must call :meth:`invalidate_vector`.
        """
        from repro.engine.vectors import numpy_enabled, vector_from_values

        if not numpy_enabled():
            return None
        if self._vector_state == "unbuilt":
            vec = vector_from_values(self.values, self.dtype)
            if vec is None:
                self._vector_state = "none"
            else:
                self._vector = vec
                self._vector_crc = vec.checksum()
                self._vector_state = "built"
        return self._vector

    def invalidate_vector(self) -> None:
        """Drop the cached vector (the stored values changed)."""
        self._vector = None
        self._vector_crc = None
        self._vector_state = "unbuilt"


def _chunk_intact(chunk: "ColumnChunk") -> bool:
    """Per-read digest check.  A chunk with a cached vector verifies
    via CRC over the array buffers — no per-element re-tupling — which
    is what makes repeated scans of hot chunks cheap.  Any mutation of
    the stored list goes through :meth:`ColumnChunk.invalidate_vector`
    (the fault injector does), dropping back to the exact list check;
    :meth:`Store.verify_integrity` always sweeps the lists.
    """
    if chunk._vector is not None and chunk._vector_crc is not None:
        return chunk._vector.checksum() == chunk._vector_crc
    return chunk_checksum(chunk.values) == chunk.checksum


@dataclass
class Partition:
    """A horizontal slice of a table: one chunk per column."""

    chunks: dict[str, ColumnChunk]
    row_count: int

    def chunk(self, name: str) -> ColumnChunk:
        try:
            return self.chunks[name.lower()]
        except KeyError:
            raise CatalogError(f"partition has no column {name!r}") from None


class StoredTable:
    """All partitions of one table."""

    def __init__(self, definition: TableDef, partitions: list[Partition]):
        self.definition = definition
        self.partitions = partitions

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.partitions)

    @classmethod
    def from_columns(
        cls,
        definition: TableDef,
        data: dict[str, Sequence],
        partition_rows: int | None = None,
        split: str = "rows",
    ) -> "StoredTable":
        """Build a stored table from column vectors.

        With the default ``split="rows"``, rows are chunked into
        fixed-size partitions of ``partition_rows`` (one partition when
        unset) — partition boundaries ignore the partition column, so
        a key's rows may span two partitions.  This is the layout the
        TPC-DS generator uses (its output is pinned by regression
        tests).

        ``split="key_range"`` (requires a partition column; data must
        be sorted by it, NULLs first) aligns boundaries to key-run
        edges so equal keys never span partitions: runs are packed
        until a partition reaches ``partition_rows``; with
        ``partition_rows`` unset, every distinct key gets its own
        partition.  Falls back to ``"rows"`` behaviour when the
        definition has no partition column.
        """
        if split not in ("rows", "key_range"):
            raise CatalogError(f"unknown split mode {split!r}")
        lower = {k.lower(): list(v) for k, v in data.items()}
        names = [c.name.lower() for c in definition.columns]
        missing = [n for n in names if n not in lower]
        if missing:
            raise CatalogError(f"table {definition.name!r} missing columns {missing}")
        total = len(lower[names[0]]) if names else 0
        for n in names:
            if len(lower[n]) != total:
                raise CatalogError(f"column {n!r} length mismatch in {definition.name!r}")

        part_col = definition.partition_column
        if split == "key_range" and part_col is not None and total:
            boundaries = cls._key_range_boundaries(
                lower[part_col.lower()], partition_rows
            )
        elif partition_rows is None or partition_rows <= 0 or total == 0:
            boundaries = [(0, total)]
        else:
            boundaries = [
                (start, min(start + partition_rows, total))
                for start in range(0, total, partition_rows)
            ]

        partitions: list[Partition] = []
        for start, end in boundaries:
            chunks: dict[str, ColumnChunk] = {}
            for cdef in definition.columns:
                key = cdef.name.lower()
                chunks[key] = ColumnChunk.build(
                    cdef.name, cdef.dtype, lower[key][start:end], cdef.avg_string_bytes
                )
            partitions.append(Partition(chunks, end - start))
        return cls(definition, partitions)

    @staticmethod
    def _key_range_boundaries(
        keys: list, partition_rows: int | None
    ) -> list[tuple[int, int]]:
        """Partition boundaries aligned to key-run edges (see
        :meth:`from_columns`).  ``keys`` is the partition column's full
        vector; consecutive equal keys form one indivisible run."""
        runs: list[int] = []  # start index of each key run
        previous = object()
        for i, key in enumerate(keys):
            if i == 0 or key != previous:
                runs.append(i)
            previous = key
        runs.append(len(keys))

        target = partition_rows if partition_rows and partition_rows > 0 else 1
        boundaries: list[tuple[int, int]] = []
        start = 0
        for run_end in runs[1:]:
            if run_end - start >= target:
                boundaries.append((start, run_end))
                start = run_end
        if start < len(keys):
            boundaries.append((start, len(keys)))
        return boundaries

    def total_bytes(self, columns: Iterable[str] | None = None) -> float:
        """Encoded size of the table (optionally a column subset)."""
        wanted = None if columns is None else {c.lower() for c in columns}
        total = 0.0
        for part in self.partitions:
            for key, chunk in part.chunks.items():
                if wanted is None or key in wanted:
                    total += chunk.encoded_size
        return total


class Store:
    """In-memory object store holding all tables for a session.

    ``fault_injector`` (a :class:`~repro.storage.faults.FaultInjector`)
    makes reads fail like S3 does; ``verify_checksums`` re-checks every
    chunk's build-time digest on read; ``strict_blocks`` is the opt-in
    strict mode for tests/CI — ``"copy"`` hands out copied vectors so
    an operator mutating a block in place cannot corrupt stored data,
    ``"verify"`` keeps the zero-copy fast path but expects the caller
    (``Session.execute``) to run :meth:`verify_integrity` after each
    query, turning silent in-place mutation into a hard failure.
    """

    def __init__(
        self,
        fault_injector=None,
        verify_checksums: bool = True,
        strict_blocks: str | None = None,
    ) -> None:
        self._tables: dict[str, StoredTable] = {}
        self.fault_injector = fault_injector
        self.verify_checksums = verify_checksums
        if strict_blocks not in (None, "copy", "verify"):
            raise ValueError(
                f"strict_blocks must be None, 'copy' or 'verify', got {strict_blocks!r}"
            )
        self.strict_blocks = strict_blocks
        #: Simulated object-store round-trip latency per partition read
        #: (milliseconds).  The store is in-memory, so reads are
        #: unrealistically free; this knob restores the S3-like regime
        #: the paper's engine operates in, where per-partition latency —
        #: not CPU — dominates scans and partition-parallel workers win
        #: by overlapping it.  0 disables (the default).
        self.io_latency_ms: float = 0.0

    def put(self, table: StoredTable) -> None:
        self._tables[table.name.lower()] = table

    def get(self, name: str, runtime=None) -> StoredTable:
        try:
            stored = self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no stored data for table {name!r}") from None
        if self.fault_injector is not None:
            self.fault_injector.on_get(
                name, metrics=None if runtime is None else runtime.metrics
            )
        return stored

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def stored_table(self, name: str) -> StoredTable:
        """Metadata access to a stored table — no fault injection.

        The parallel scheduler uses this for partition counts and
        canonical names when cutting morsel windows; actual data reads
        still go through :meth:`get` / :meth:`scan_blocks` and their
        fault hooks.
        """
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no stored data for table {name!r}") from None

    def partition_count(self, name: str) -> int:
        """Stored partition count of ``name`` (metadata only)."""
        return len(self.stored_table(name).partitions)

    def load_catalog(self, catalog: Catalog) -> None:
        """Register every stored table's definition (with live row
        counts and per-column statistics) into ``catalog``."""
        for stored in self._tables.values():
            self.register_table(stored.name, catalog)

    def register_table(self, name: str, catalog: Catalog) -> None:
        """(Re-)register one stored table into ``catalog``.

        Also the reload path: after replacing a table's data via
        :meth:`put`, re-registering bumps the catalog's table version
        (see :meth:`~repro.catalog.catalog.Catalog.register`), which
        invalidates any cross-query cache entries built over the old
        data.
        """
        from repro.catalog.catalog import ColumnStats

        stored = self.get(name)
        definition = stored.definition
        catalog.register(
            TableDef(
                definition.name,
                definition.columns,
                definition.primary_key,
                definition.partition_column,
                stored.row_count,
            )
        )
        total = stored.row_count
        for cdef in definition.columns:
            distinct: set = set()
            nulls = 0
            min_value = max_value = None
            for part in stored.partitions:
                chunk = part.chunk(cdef.name)
                for value in chunk.values:
                    if value is None:
                        nulls += 1
                    else:
                        distinct.add(value)
                if chunk.min_value is not None:
                    min_value = (
                        chunk.min_value
                        if min_value is None
                        else min(min_value, chunk.min_value)
                    )
                    max_value = (
                        chunk.max_value
                        if max_value is None
                        else max(max_value, chunk.max_value)
                    )
            catalog.set_column_stats(
                definition.name,
                cdef.name,
                ColumnStats(
                    ndv=len(distinct),
                    null_fraction=nulls / total if total else 0.0,
                    min_value=min_value,
                    max_value=max_value,
                ),
            )

    def scan_blocks(
        self,
        table_name: str,
        columns: Sequence[str],
        accounting,
        partition_predicate: Callable[[ColumnChunk], bool] | None = None,
        block_rows: int | None = None,
        runtime=None,
        as_vectors: bool = False,
    ) -> Iterator[tuple[list[list], int]]:
        """Columnar fast path: yield ``(column_vectors, row_count)``
        blocks of the requested columns, charging accounting.

        With ``as_vectors=True`` (the compiled engine's NumPy mode),
        eligible columns come back as cached
        :class:`~repro.engine.vectors.NumpyVector` chunks instead of
        Python lists — same length, same logical values, NULLs carried
        in a validity mask.  Ineligible columns (mixed types, strings)
        still yield lists, and ``strict_blocks == "copy"`` disables
        vectors entirely (copy-out mode hands out defensive copies).

        ``partition_predicate`` receives the *partition column's* chunk
        (with min/max) and returns False to prune the whole partition —
        pruned partitions are never charged.  With ``block_rows`` set,
        partitions larger than the limit are sliced into consecutive
        blocks (never spanning a partition boundary); accounting is
        identical either way, since it is charged per partition chunk.
        Callers must treat the yielded vectors as immutable: small
        partitions hand out the stored chunk lists by reference (unless
        ``strict_blocks == "copy"``).

        ``runtime`` (a :class:`~repro.engine.metrics.RunContext`)
        supplies the retry policy for transient faults, deadline checks
        at partition boundaries, fault/retry/verification counters, and
        the plan cache to evict from when corruption is detected.  A
        chunk is charged to ``accounting`` only once its read succeeds,
        so retries never double-charge ``bytes_scanned``.
        """
        stored = self.get(table_name, runtime=runtime)
        accounting.record_scan(stored.name)
        part_col = stored.definition.partition_column
        copy_out = self.strict_blocks == "copy"
        use_vectors = as_vectors and not copy_out
        window = None
        if runtime is not None:
            window = getattr(runtime, "partition_window", None)
            if window is not None and window[0] != stored.name.lower():
                window = None
        for index, part in enumerate(stored.partitions):
            if window is not None and not (window[1] <= index < window[2]):
                # Outside this morsel's window: another worker reads
                # (and charges) it, so skipping here is accounting-free.
                continue
            if partition_predicate is not None and part_col is not None:
                if not partition_predicate(part.chunk(part_col)):
                    continue
            if runtime is not None:
                runtime.checkpoint()
            if self.io_latency_ms > 0.0:
                _sleep(self.io_latency_ms / 1000.0)
            accounting.record_partition(part.row_count)
            vectors = []
            for name in columns:
                chunk = part.chunk(name)
                values = self._read_chunk_values(stored.name, index, chunk, runtime)
                accounting.record_chunk(stored.name, chunk.encoded_size)
                if use_vectors:
                    vec = chunk.vector()  # read verified just above
                    if vec is not None:
                        vectors.append(vec)
                        continue
                vectors.append(list(values) if copy_out else values)
            total = part.row_count
            if block_rows is None or total <= block_rows:
                yield vectors, total
            else:
                for start in range(0, total, block_rows):
                    end = min(start + block_rows, total)
                    yield [v[start:end] for v in vectors], end - start

    def _read_chunk_values(
        self, table: str, partition: int, chunk: ColumnChunk, runtime
    ) -> list:
        """One chunk read: fault injection, checksum verification, and
        bounded retries of transient failures.

        Transient faults are retried per the runtime's policy (with
        backoff); corruption is never retried — it evicts plan-cache
        entries over ``table`` and raises
        :class:`~repro.errors.DataCorruptionError` with recovery steps.
        """
        injector = self.fault_injector
        if injector is None and not self.verify_checksums:
            return chunk.values
        policy = None if runtime is None else runtime.retry_policy
        metrics = None if runtime is None else runtime.metrics
        site = (table.lower(), partition, chunk.name.lower())
        attempt = 0
        while True:
            try:
                if injector is not None:
                    injector.on_chunk_read(site, chunk, attempt, metrics=metrics)
                if self.verify_checksums and chunk.checksum is not None:
                    if metrics is not None:
                        metrics.checksum_verifications += 1
                    if not _chunk_intact(chunk):
                        if runtime is not None and runtime.plan_cache is not None:
                            runtime.plan_cache.invalidate_table(table)
                        raise DataCorruptionError(
                            f"checksum mismatch on {table}.{chunk.name} partition "
                            f"{partition}: stored data is corrupt; reload the table "
                            "(store.put + session.reload_table) and re-run the query"
                        )
                return chunk.values
            except TransientReadError as exc:
                if policy is None or attempt >= policy.max_retries:
                    raise TransientReadError(
                        f"reading {table}.{chunk.name} partition {partition} failed "
                        f"after {attempt + 1} attempt(s): {exc}; enable or raise "
                        "retries (--retries) to absorb transient faults"
                    ) from exc
                policy.backoff(attempt, site)
                attempt += 1
                if metrics is not None:
                    metrics.retries += 1

    def verify_integrity(self, tables: Iterable[str] | None = None) -> int:
        """Re-verify every stored chunk against its build-time checksum.

        Returns the number of chunks checked; raises
        :class:`~repro.errors.DataCorruptionError` naming the first
        mismatching chunk.  Used by the ``strict_blocks="verify"`` mode
        (and chaos tests) to turn silent in-place mutation of a
        handed-out block vector into a hard failure.
        """
        wanted = None if tables is None else {t.lower() for t in tables}
        checked = 0
        for key, stored in self._tables.items():
            if wanted is not None and key not in wanted:
                continue
            for index, part in enumerate(stored.partitions):
                for chunk in part.chunks.values():
                    if chunk.checksum is None:
                        continue
                    checked += 1
                    if chunk_checksum(chunk.values) != chunk.checksum:
                        raise DataCorruptionError(
                            f"integrity check failed: {stored.name}.{chunk.name} "
                            f"partition {index} no longer matches its build-time "
                            "checksum (in-place mutation of a scanned block, or "
                            "corruption); reload the table to recover"
                        )
        return checked

    def scan(
        self,
        table_name: str,
        columns: Sequence[str],
        accounting,
        partition_predicate: Callable[[ColumnChunk], bool] | None = None,
        runtime=None,
    ) -> Iterator[tuple]:
        """Stream rows of the requested columns, charging accounting.

        Row-tuple view over :meth:`scan_blocks` (same pruning, same
        accounting and fault handling by construction).
        """
        for vectors, count in self.scan_blocks(
            table_name, columns, accounting, partition_predicate, runtime=runtime
        ):
            if vectors:
                yield from zip(*vectors)
            else:
                yield from (() for _ in range(count))
