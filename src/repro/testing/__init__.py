"""Differential testing infrastructure (fuzzer, oracle, minimizer).

The safety net for the fusion rewrites: a seeded SQL query generator
over the TPC-DS catalog, a differential oracle that cross-checks every
query over {row, batch} × {fusion on/off} × {cache cold/warm} with the
plan invariant validator armed, and a delta-debugging minimizer for
the queries that diverge.  Entry points:

* :func:`repro.testing.runner.run_fuzz` — a full campaign (used by
  ``repro fuzz`` and CI);
* :class:`repro.testing.oracle.DifferentialOracle` — check one query;
* :class:`repro.testing.generator.QueryGenerator` — the seeded stream;
* :func:`repro.testing.minimizer.minimize` — shrink a failing spec.
"""

from repro.testing.generator import QueryGenerator, QuerySpec, SelectBlock
from repro.testing.minimizer import minimize
from repro.testing.oracle import DifferentialOracle, Divergence, canonical_rows
from repro.testing.runner import FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "DifferentialOracle",
    "Divergence",
    "FuzzFailure",
    "FuzzReport",
    "QueryGenerator",
    "QuerySpec",
    "SelectBlock",
    "canonical_rows",
    "minimize",
    "run_fuzz",
]
