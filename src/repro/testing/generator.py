"""Deterministic, seedable SQL query generator for differential fuzzing.

Generates random queries over the synthetic TPC-DS catalog as small
structured specs (:class:`QuerySpec` → :class:`SelectBlock`) that
render to SQL text.  The structure exists for the delta-debugging
minimizer (:mod:`repro.testing.minimizer`): shrink moves delete spec
elements, and the rendered SQL goes through the real parser/binder, so
an over-aggressive shrink simply changes the failure signature (to a
uniform binder error) and rejects itself.

The shape distribution is deliberately biased toward plans the fusion
rules rewrite — UNION ALL over the same table, CTEs referenced twice,
repeated scalar subqueries (TPC-DS Q9's shape), GroupBy joined back to
its input (Q30's shape) — plus the NULL-heavy fact columns
(``ss_customer_sk`` and friends) and three-valued-logic bait
(``IN (…, NULL)``, ``IS NULL``, ``CASE … ELSE NULL``) that shake out
mask/compensation bugs.

Everything is driven by one ``random.Random(seed)``: the same seed
always yields the same query sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebra.types import DataType
from repro.catalog.catalog import Catalog

#: Tables the fuzzer draws from.  A small pool makes independently
#: generated subqueries collide on tables, which is what gives fusion
#: something to merge.
TABLE_POOL = (
    "store_sales",
    "store_returns",
    "item",
    "store",
    "customer",
    "date_dim",
)

#: Foreign-key edges used for join conditions (fact → dimension).
JOIN_EDGES = {
    "store_sales": (
        ("item", "ss_item_sk", "i_item_sk"),
        ("store", "ss_store_sk", "s_store_sk"),
        ("customer", "ss_customer_sk", "c_customer_sk"),
        ("date_dim", "ss_sold_date_sk", "d_date_sk"),
        ("store_returns", "ss_item_sk", "sr_item_sk"),
    ),
    "store_returns": (
        ("item", "sr_item_sk", "i_item_sk"),
        ("customer", "sr_customer_sk", "c_customer_sk"),
        ("store", "sr_store_sk", "s_store_sk"),
    ),
}

#: Fact columns the dataset generator salts with NULLs — predicates on
#: them exercise three-valued logic.
NULLABLE_COLUMNS = frozenset(
    {"ss_customer_sk", "ss_hdemo_sk", "ss_addr_sk", "sr_customer_sk"}
)


@dataclass
class ColumnInfo:
    """A column visible in some scope: name, type, and (for literal
    sampling) the stored min/max when the catalog has statistics."""

    name: str
    dtype: DataType
    lo: object | None = None
    hi: object | None = None

    @property
    def is_numeric(self) -> bool:
        return self.dtype.is_numeric


#: A scope maps aliases to the columns they expose.
Scope = list[tuple[str, list[ColumnInfo]]]


@dataclass
class Aggregate:
    """``func(DISTINCT arg) FILTER (WHERE mask)`` as rendered text."""

    func: str
    arg: str | None  # None = count(*)
    distinct: bool = False
    mask: str | None = None

    def render(self, alias: str) -> str:
        if self.arg is None:
            inner = "*"
        else:
            inner = f"DISTINCT {self.arg}" if self.distinct else self.arg
        sql = f"{self.func}({inner})"
        if self.mask is not None:
            sql += f" FILTER (WHERE {self.mask})"
        return f"{sql} AS {alias}"


@dataclass
class JoinSpec:
    """One FROM-clause join; ``query`` makes it a derived table."""

    kind: str  # "INNER JOIN" | "LEFT JOIN" | "CROSS JOIN"
    table: str | None
    alias: str
    on: str | None
    query: "SelectBlock | None" = None

    def render(self) -> str:
        source = f"({self.query.render()})" if self.query is not None else self.table
        sql = f"{self.kind} {source} {self.alias}"
        if self.on is not None:
            sql += f" ON {self.on}"
        return sql


@dataclass
class SelectBlock:
    """One SELECT … FROM … [JOIN …] [WHERE …] [GROUP BY …] [HAVING …].

    When ``group_by``/``aggregates`` are set the select list is derived
    from them; otherwise ``select`` holds plain rendered expressions.
    ``out_infos`` records output name/type metadata for enclosing
    scopes at generation time (it is not rendered, and may go stale
    under minimization, which is harmless).
    """

    base_table: str
    base_alias: str
    joins: list[JoinSpec] = field(default_factory=list)
    select: list[str] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    aggregates: list[Aggregate] = field(default_factory=list)
    where: list[str] = field(default_factory=list)
    having: list[str] = field(default_factory=list)
    distinct: bool = False
    out_infos: list[ColumnInfo] = field(default_factory=list)

    @property
    def grouped(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates)

    def arity(self) -> int:
        if self.grouped:
            return len(self.group_by) + len(self.aggregates)
        return max(len(self.select), 1)

    def output_aliases(self) -> list[str]:
        return [f"c{i}" for i in range(self.arity())]

    def render(self) -> str:
        items: list[str] = []
        if self.grouped:
            for expr in self.group_by:
                items.append(f"{expr} AS c{len(items)}")
            for agg in self.aggregates:
                items.append(agg.render(f"c{len(items)}"))
        else:
            for expr in self.select:
                items.append(f"{expr} AS c{len(items)}")
        if not items:  # minimizer emptied the list; keep the SQL valid
            items = ["count(*) AS c0"]
        sql = "SELECT "
        if self.distinct:
            sql += "DISTINCT "
        sql += ", ".join(items)
        sql += f" FROM {self.base_table} {self.base_alias}"
        for join in self.joins:
            sql += f" {join.render()}"
        if self.where:
            sql += " WHERE " + " AND ".join(self.where)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(self.group_by)
        if self.having:
            sql += " HAVING " + " AND ".join(self.having)
        return sql


@dataclass
class QuerySpec:
    """A full query: CTEs + one or more UNION ALL branches + ordering."""

    branches: list[SelectBlock]
    ctes: list[tuple[str, SelectBlock]] = field(default_factory=list)
    order_by: bool = False
    #: Only rendered together with ``order_by`` over *all* output
    #: columns: a LIMIT under a total order has a deterministic row
    #: multiset, so the oracle can compare it across plan shapes.
    limit: int | None = None

    def render(self) -> str:
        parts: list[str] = []
        if self.ctes:
            rendered = ", ".join(
                f"{name} AS ({block.render()})" for name, block in self.ctes
            )
            parts.append(f"WITH {rendered}")
        parts.append(" UNION ALL ".join(block.render() for block in self.branches))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(self.branches[0].output_aliases()))
            if self.limit is not None:
                parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def catalog_column_infos(catalog: Catalog, table: str) -> list[ColumnInfo]:
    """Column metadata (with stats-derived literal ranges) for a table."""
    infos = []
    for cdef in catalog.table(table).columns:
        stats = catalog.column_stats(table, cdef.name)
        lo = stats.min_value if stats is not None else None
        hi = stats.max_value if stats is not None else None
        infos.append(ColumnInfo(cdef.name, cdef.dtype, lo, hi))
    return infos


_SHAPES = (
    ("simple", 3.0),
    ("agg", 3.0),
    ("scalar_agg", 1.0),
    ("union", 3.0),
    ("cte_self_join", 2.0),
    ("scalar_subqueries", 2.0),
    ("groupby_join", 1.5),
    ("window", 1.0),
    ("subquery_predicate", 1.0),
)


class QueryGenerator:
    """Seeded random query generator over a bound catalog."""

    def __init__(self, catalog: Catalog, seed: int = 0):
        self.rng = random.Random(seed)
        self.tables: dict[str, list[ColumnInfo]] = {
            name: catalog_column_infos(catalog, name)
            for name in TABLE_POOL
            if catalog.has_table(name)
        }
        if not self.tables:
            raise ValueError("none of the fuzzer's tables are in the catalog")
        self._alias_counter = 0

    # -- public API --------------------------------------------------------

    def generate(self) -> QuerySpec:
        """One random query spec (advances the seeded stream)."""
        self._alias_counter = 0
        shape = self._weighted(_SHAPES)
        builder = getattr(self, f"_shape_{shape}")
        spec: QuerySpec = builder()
        self._maybe_order(spec)
        return spec

    # -- shapes ------------------------------------------------------------

    def _shape_simple(self) -> QuerySpec:
        block, scope = self._plain_block()
        self._fill_select(block, scope)
        if self.rng.random() < 0.15:
            block.distinct = True
        return QuerySpec([block])

    def _shape_agg(self) -> QuerySpec:
        block, scope = self._plain_block()
        self._fill_group_by(block, scope)
        return QuerySpec([block])

    def _shape_scalar_agg(self) -> QuerySpec:
        block, scope = self._plain_block()
        self._fill_aggregates(block, scope, self.rng.randint(1, 3))
        return QuerySpec([block])

    def _shape_union(self) -> QuerySpec:
        """UNION ALL branches over the same table — §IV.D bait."""
        first, scope = self._plain_block(max_joins=1)
        if self.rng.random() < 0.6:
            self._fill_group_by(first, scope)
        else:
            self._fill_select(first, scope)
        branches = [first]
        for _ in range(self.rng.randint(1, 2)):
            branch = _clone_block(first)
            # Same structure, different filters: exactly what the
            # UnionAll fusion rule merges with compensations.
            branch.where = [
                self._predicate(scope) for _ in range(self.rng.randint(0, 2))
            ]
            branches.append(branch)
        return QuerySpec(branches)

    def _shape_cte_self_join(self) -> QuerySpec:
        """A CTE consumed twice — the general fusion driver."""
        cte, cte_scope = self._plain_block(max_joins=1)
        key = self._pick_column(cte_scope, numeric=True)
        cte.group_by = [key]
        self._fill_aggregates(cte, cte_scope, self.rng.randint(1, 2))
        cte.out_infos = self._grouped_out_infos(cte, cte_scope)

        name = "shared"
        left_alias, right_alias = "x", "y"
        exposed = cte.out_infos
        scope: Scope = [(left_alias, exposed), (right_alias, exposed)]
        main = SelectBlock(
            base_table=name,
            base_alias=left_alias,
            joins=[
                JoinSpec(
                    self.rng.choice(("INNER JOIN", "LEFT JOIN")),
                    name,
                    right_alias,
                    f"{left_alias}.c0 = {right_alias}.c0",
                )
            ],
        )
        main.where = [self._predicate(scope) for _ in range(self.rng.randint(0, 2))]
        self._fill_select(main, scope)
        return QuerySpec([main], ctes=[(name, cte)])

    def _shape_scalar_subqueries(self) -> QuerySpec:
        """Repeated scalar aggregate subqueries — TPC-DS Q9's shape."""
        driver = self.rng.choice(("store", "item", "customer", "date_dim"))
        driver = driver if driver in self.tables else next(iter(self.tables))
        alias = self._alias()
        scope: Scope = [(alias, self.tables[driver])]
        block = SelectBlock(base_table=driver, base_alias=alias)
        key = self._pick_column(scope, numeric=True)
        block.where = [f"{key} <= {self._literal_for(scope, key)}"]
        fact = "store_sales" if "store_sales" in self.tables else driver
        for _ in range(self.rng.randint(2, 3)):
            block.select.append(self._scalar_subquery(fact, outer_scope=scope))
        if self.rng.random() < 0.5:
            block.select.append(key)
        return QuerySpec([block])

    def _shape_groupby_join(self) -> QuerySpec:
        """Fact joined to an aggregate over itself — §IV.A bait."""
        fact = "store_sales" if "store_sales" in self.tables else next(iter(self.tables))
        edges = JOIN_EDGES.get(fact, ())
        key_col = edges[1][1] if len(edges) > 1 else self.tables[fact][0].name

        inner_alias = self._alias()
        inner_scope: Scope = [(inner_alias, self.tables[fact])]
        inner = SelectBlock(base_table=fact, base_alias=inner_alias)
        inner.group_by = [f"{inner_alias}.{key_col}"]
        self._fill_aggregates(inner, inner_scope, self.rng.randint(1, 2))
        # The §IV.A rewrite only fires for exact fusion with plain
        # aggregates, so bias toward that — but keep some masked /
        # filtered inners so the rule's *declining* path is fuzzed too.
        for agg in inner.aggregates:
            if self.rng.random() < 0.7:
                agg.mask = None
                agg.distinct = False
        inner.where = [
            self._predicate(inner_scope)
            for _ in range(1 if self.rng.random() < 0.3 else 0)
        ]
        inner.out_infos = self._grouped_out_infos(inner, inner_scope)

        outer_alias = self._alias()
        derived_alias = self._alias()
        scope: Scope = [
            (outer_alias, self.tables[fact]),
            (derived_alias, inner.out_infos),
        ]
        block = SelectBlock(
            base_table=fact,
            base_alias=outer_alias,
            joins=[
                JoinSpec(
                    "INNER JOIN",
                    None,
                    derived_alias,
                    f"{outer_alias}.{key_col} = {derived_alias}.c0",
                    query=inner,
                )
            ],
        )
        # Predicates on the fact side get pushed into the probe scan and
        # make the scans non-fusable-exactly (the rewrite then correctly
        # declines); bias toward predicates on the aggregate side, which
        # the rule peels as §IV.E residual conditions.
        pred_scope = scope if self.rng.random() < 0.4 else [scope[1]]
        block.where = [
            self._predicate(pred_scope)
            for _ in range(0 if self.rng.random() < 0.5 else self.rng.randint(1, 2))
        ]
        self._fill_select(block, scope)
        return QuerySpec([block])

    def _shape_window(self) -> QuerySpec:
        block, scope = self._plain_block(max_joins=1)
        partition = self._pick_column(scope, numeric=True)
        arg = self._pick_column(scope, numeric=True)
        func = self.rng.choice(("sum", "avg", "min", "max", "count"))
        block.select = [
            partition,
            arg,
            f"{func}({arg}) OVER (PARTITION BY {partition})",
        ]
        return QuerySpec([block])

    def _shape_subquery_predicate(self) -> QuerySpec:
        block, scope = self._plain_block(max_joins=1)
        choice = self.rng.random()
        if choice < 0.4:
            sub_table = self.rng.choice(list(self.tables))
            sub_alias = self._alias()
            sub_scope: Scope = [(sub_alias, self.tables[sub_table])]
            pred = self._predicate(sub_scope)
            block.where.append(
                f"EXISTS (SELECT 1 FROM {sub_table} {sub_alias} WHERE {pred})"
            )
        elif choice < 0.8:
            column = self._pick_column(scope, numeric=True)
            sub_table = self.rng.choice(list(self.tables))
            sub_alias = self._alias()
            sub_scope = [(sub_alias, self.tables[sub_table])]
            sub_col = self._pick_column(sub_scope, numeric=True)
            pred = self._predicate(sub_scope)
            block.where.append(
                f"{column} IN (SELECT {sub_col} FROM {sub_table} {sub_alias} "
                f"WHERE {pred})"
            )
        else:
            column = self._pick_column(scope, numeric=True)
            fact = "store_sales" if "store_sales" in self.tables else block.base_table
            sub = self._scalar_subquery(fact, outer_scope=None)
            block.where.append(f"{column} <= {sub}")
        self._fill_select(block, scope)
        return QuerySpec([block])

    # -- building blocks ---------------------------------------------------

    def _alias(self) -> str:
        alias = f"t{self._alias_counter}"
        self._alias_counter += 1
        return alias

    def _weighted(self, options) -> str:
        names = [n for n, _ in options]
        weights = [w for _, w in options]
        return self.rng.choices(names, weights=weights, k=1)[0]

    def _plain_block(self, max_joins: int = 2) -> tuple[SelectBlock, Scope]:
        """A FROM/JOIN/WHERE skeleton with an empty select list."""
        base = self.rng.choice(list(self.tables))
        alias = self._alias()
        scope: Scope = [(alias, self.tables[base])]
        block = SelectBlock(base_table=base, base_alias=alias)
        edges = [e for e in JOIN_EDGES.get(base, ()) if e[0] in self.tables]
        n_joins = self.rng.randint(0, max_joins) if edges else 0
        for edge in self.rng.sample(edges, k=min(n_joins, len(edges))):
            other, fact_key, dim_key = edge
            other_alias = self._alias()
            kind = "LEFT JOIN" if self.rng.random() < 0.3 else "INNER JOIN"
            block.joins.append(
                JoinSpec(kind, other, other_alias, f"{alias}.{fact_key} = {other_alias}.{dim_key}")
            )
            scope.append((other_alias, self.tables[other]))
        for _ in range(self.rng.randint(0, 3)):
            block.where.append(self._predicate(scope))
        return block, scope

    def _fill_select(self, block: SelectBlock, scope: Scope) -> None:
        for _ in range(self.rng.randint(1, 4)):
            block.select.append(self._select_expression(scope))
        block.out_infos = [
            ColumnInfo(f"c{i}", DataType.INTEGER) for i in range(len(block.select))
        ]

    def _fill_group_by(self, block: SelectBlock, scope: Scope) -> None:
        n_keys = self.rng.randint(1, 2)
        keys: list[str] = []
        for _ in range(n_keys):
            key = self._pick_column(scope)
            if key not in keys:
                keys.append(key)
        block.group_by = keys
        self._fill_aggregates(block, scope, self.rng.randint(1, 3))
        if self.rng.random() < 0.3:
            block.having.append(f"count(*) > {self.rng.randint(0, 3)}")
        block.out_infos = self._grouped_out_infos(block, scope)

    def _fill_aggregates(self, block: SelectBlock, scope: Scope, count: int) -> None:
        for _ in range(count):
            block.aggregates.append(self._aggregate(scope))

    def _aggregate(self, scope: Scope) -> Aggregate:
        func = self.rng.choice(("count", "count", "sum", "sum", "avg", "min", "max"))
        if func == "count" and self.rng.random() < 0.5:
            arg = None
        else:
            arg = self._pick_column(scope, numeric=func in ("sum", "avg"))
        distinct = arg is not None and self.rng.random() < 0.2
        mask = self._predicate(scope) if self.rng.random() < 0.35 else None
        return Aggregate(func, arg, distinct, mask)

    def _grouped_out_infos(self, block: SelectBlock, scope: Scope) -> list[ColumnInfo]:
        infos: list[ColumnInfo] = []
        for i, key in enumerate(block.group_by):
            found = self._info_of(scope, key)
            infos.append(
                ColumnInfo(f"c{i}", found.dtype if found else DataType.INTEGER,
                           found.lo if found else None, found.hi if found else None)
            )
        for j, agg in enumerate(block.aggregates):
            pos = len(block.group_by) + j
            if agg.func == "count":
                infos.append(ColumnInfo(f"c{pos}", DataType.INTEGER, 0, 1000))
            elif agg.func == "avg":
                infos.append(ColumnInfo(f"c{pos}", DataType.DOUBLE, 0, 1000))
            else:
                found = self._info_of(scope, agg.arg) if agg.arg else None
                infos.append(
                    ColumnInfo(
                        f"c{pos}",
                        found.dtype if found else DataType.INTEGER,
                        found.lo if found else None,
                        found.hi if found else None,
                    )
                )
        return infos

    def _info_of(self, scope: Scope, rendered: str | None) -> ColumnInfo | None:
        if rendered is None:
            return None
        for alias, infos in scope:
            for info in infos:
                if f"{alias}.{info.name}" == rendered:
                    return info
        return None

    def _scalar_subquery(self, table: str, outer_scope: Scope | None) -> str:
        """``(SELECT agg FROM fact WHERE …)``, occasionally correlated
        with the outer scope (decorrelation + fusion bait)."""
        alias = self._alias()
        scope: Scope = [(alias, self.tables[table])]
        func = self.rng.choice(("count", "sum", "avg", "min", "max"))
        if func == "count" and self.rng.random() < 0.5:
            agg = "count(*)"
        else:
            agg = f"{func}({self._pick_column(scope, numeric=True)})"
        preds = [self._predicate(scope) for _ in range(self.rng.randint(1, 2))]
        if outer_scope is not None and self.rng.random() < 0.3:
            outer_alias, outer_infos = outer_scope[0]
            outer_nums = [i for i in outer_infos if i.is_numeric]
            inner_nums = [i for _, infos in scope for i in infos if i.is_numeric]
            if outer_nums and inner_nums:
                o = self.rng.choice(outer_nums)
                i = self.rng.choice(inner_nums)
                preds.append(f"{alias}.{i.name} = {outer_alias}.{o.name}")
        return (
            f"(SELECT {agg} FROM {table} {alias} WHERE "
            + " AND ".join(preds)
            + ")"
        )

    # -- expressions -------------------------------------------------------

    def _pick_column(self, scope: Scope, numeric: bool | None = None) -> str:
        """A rendered column reference, biased toward NULL-salted
        columns (three-valued-logic coverage)."""
        candidates: list[tuple[str, ColumnInfo]] = []
        for alias, infos in scope:
            for info in infos:
                if numeric is True and not info.is_numeric:
                    continue
                if numeric is False and info.dtype is not DataType.STRING:
                    continue
                candidates.append((alias, info))
        if not candidates:
            alias, infos = scope[0]
            return f"{alias}.{infos[0].name}"
        nullable = [c for c in candidates if c[1].name in NULLABLE_COLUMNS]
        if nullable and self.rng.random() < 0.3:
            alias, info = self.rng.choice(nullable)
        else:
            alias, info = self.rng.choice(candidates)
        return f"{alias}.{info.name}"

    def _literal_for(self, scope: Scope, rendered: str) -> str:
        info = self._info_of(scope, rendered)
        return self._literal(info)

    def _literal(self, info: ColumnInfo | None) -> str:
        if info is None or not isinstance(info.lo, (int, float)) or not isinstance(
            info.hi, (int, float)
        ):
            lo, hi = 0, 100
        else:
            lo, hi = info.lo, info.hi
        if info is not None and info.dtype is DataType.DOUBLE:
            return str(round(self.rng.uniform(float(lo), float(hi)), 2))
        lo_i, hi_i = int(lo), max(int(lo), int(hi))
        return str(self.rng.randint(lo_i, hi_i))

    def _string_literal(self, info: ColumnInfo) -> str:
        sample = info.lo if isinstance(info.lo, str) else "A"
        sample = "".join(ch for ch in sample if ch.isalnum() or ch == " ") or "A"
        return f"'{sample}'"

    def _select_expression(self, scope: Scope) -> str:
        roll = self.rng.random()
        if roll < 0.55:
            return self._pick_column(scope)
        if roll < 0.7:
            a = self._pick_column(scope, numeric=True)
            b = self._pick_column(scope, numeric=True)
            op = self.rng.choice(("+", "-", "*"))
            return f"{a} {op} {b}"
        if roll < 0.85:
            a = self._pick_column(scope, numeric=True)
            return f"{a} {self.rng.choice(('+', '*'))} {self.rng.randint(1, 9)}"
        pred = self._predicate(scope)
        value = self._pick_column(scope, numeric=True)
        default = "NULL" if self.rng.random() < 0.5 else "0"
        return f"CASE WHEN {pred} THEN {value} ELSE {default} END"

    def _predicate(self, scope: Scope, depth: int = 0) -> str:
        forms = [
            ("cmp", 4.0),
            ("is_null", 1.5),
            ("between", 1.0),
            ("in_list", 1.0),
            ("like", 0.8),
            ("col_col", 1.0),
            ("null_cmp", 0.3),
        ]
        if depth < 1:
            forms += [("not", 0.7), ("or", 1.2)]
        form = self._weighted(forms)
        if form == "cmp":
            col = self._pick_column(scope, numeric=True)
            op = self.rng.choice(("=", "<>", "<", "<=", ">", ">="))
            return f"{col} {op} {self._literal_for(scope, col)}"
        if form == "is_null":
            col = self._pick_column(scope)
            negated = " NOT" if self.rng.random() < 0.4 else ""
            return f"{col} IS{negated} NULL"
        if form == "between":
            col = self._pick_column(scope, numeric=True)
            a = self._literal_for(scope, col)
            b = self._literal_for(scope, col)
            lo, hi = sorted((a, b), key=float)
            return f"{col} BETWEEN {lo} AND {hi}"
        if form == "in_list":
            col = self._pick_column(scope, numeric=True)
            items = [self._literal_for(scope, col) for _ in range(self.rng.randint(1, 3))]
            if self.rng.random() < 0.3:
                items.append("NULL")
            return f"{col} IN ({', '.join(items)})"
        if form == "like":
            for alias, infos in scope:
                strings = [i for i in infos if i.dtype is DataType.STRING]
                if strings:
                    info = self.rng.choice(strings)
                    sample = self._string_literal(info)[1:-1]
                    pattern = self.rng.choice(
                        (f"{sample[:1]}%", f"%{sample[1:3]}%", f"%{sample[-1:]}")
                    )
                    return f"{alias}.{info.name} LIKE '{pattern}'"
            return self._predicate(scope, depth + 1)  # no string columns
        if form == "col_col":
            a = self._pick_column(scope, numeric=True)
            b = self._pick_column(scope, numeric=True)
            op = self.rng.choice(("=", "<", "<=", ">", ">=", "<>"))
            return f"{a} {op} {b}"
        if form == "null_cmp":
            col = self._pick_column(scope, numeric=True)
            return f"{col} {self.rng.choice(('=', '<>', '<'))} NULL"
        if form == "not":
            return f"NOT ({self._predicate(scope, depth + 1)})"
        # or
        left = self._predicate(scope, depth + 1)
        right = self._predicate(scope, depth + 1)
        return f"({left} OR {right})"

    def _maybe_order(self, spec: QuerySpec) -> None:
        if self.rng.random() < 0.4:
            spec.order_by = True
            if self.rng.random() < 0.4:
                spec.limit = self.rng.randint(1, 50)


def _clone_block(block: SelectBlock) -> SelectBlock:
    import copy

    return copy.deepcopy(block)
