"""The fuzz campaign driver: generate → check → minimize → report.

``run_fuzz(seed, count)`` is what both ``repro fuzz`` (CLI) and the CI
fuzz-smoke job call.  It is fully deterministic for a given
(seed, count, scale, data_seed) tuple.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.storage.columnar import Store
from repro.testing.generator import QueryGenerator, QuerySpec
from repro.testing.minimizer import minimize
from repro.testing.oracle import DifferentialOracle, Divergence
from repro.tpcds.generator import generate_dataset


@dataclass
class FuzzFailure:
    """One divergence, with its delta-debugged minimal reproduction."""

    index: int
    kind: str
    detail: str
    sql: str
    minimized_sql: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "detail": self.detail,
            "sql": self.sql,
            "minimized_sql": self.minimized_sql,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    count: int
    executed: int = 0
    passed: int = 0
    benign: Counter = field(default_factory=Counter)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.executed}/{self.count} queries, "
            f"{self.passed} agreed across the full matrix, "
            f"{sum(self.benign.values())} uniformly unbindable, "
            f"{len(self.failures)} divergences"
        ]
        for cls, n in sorted(self.benign.items()):
            lines.append(f"  benign {cls}: {n}")
        for failure in self.failures:
            lines.append(f"  FAILURE #{failure.index} [{failure.kind}] {failure.detail}")
            lines.append(f"    minimized: {failure.minimized_sql}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "executed": self.executed,
            "passed": self.passed,
            "benign": dict(self.benign),
            "failures": [f.to_dict() for f in self.failures],
            "ok": self.ok,
        }


def run_fuzz(
    seed: int = 0,
    count: int = 100,
    scale: float = 0.01,
    data_seed: int = 7,
    store: Store | None = None,
    minimize_failures: bool = True,
    fail_fast: bool = False,
    analysis: bool = True,
    workers: tuple[int, ...] = (),
    cost_axis: bool = False,
    progress: Callable[[int, "FuzzReport"], None] | None = None,
) -> FuzzReport:
    """Run ``count`` seeded queries through the differential oracle.

    ``store`` lets callers (tests) reuse an already generated dataset;
    otherwise one is generated at ``scale`` with ``data_seed``.
    ``analysis`` arms the static-facts runtime check in every cell
    (see :class:`~repro.testing.oracle.DifferentialOracle`).
    ``workers`` adds parallel-execution cells to the matrix: each
    count > 1 re-runs every query on the batch engine at ``workers=n``
    against one shared fragment worker pool.  ``cost_axis`` adds
    costed-vs-heuristic cells: the batch engine re-runs every query
    with cost-based rewrite selection, and the rows must match.
    """
    if store is None:
        store = generate_dataset(scale=scale, seed=data_seed)
    catalog = Catalog()
    store.load_catalog(catalog)
    generator = QueryGenerator(catalog, seed=seed)
    report = FuzzReport(seed=seed, count=count)

    with DifferentialOracle(
        store,
        analysis=analysis,
        worker_counts=tuple(workers),
        cost_axis=cost_axis,
    ) as oracle:
        for index in range(count):
            spec = generator.generate()
            divergence = oracle.check(spec.render())
            report.executed += 1
            if divergence is None:
                if oracle.last_status == "benign":
                    report.benign[oracle.last_error_class] += 1
                else:
                    report.passed += 1
            else:
                minimized = spec
                if minimize_failures:
                    minimized = minimize(spec, _same_kind(oracle, divergence))
                report.failures.append(
                    FuzzFailure(
                        index=index,
                        kind=divergence.kind,
                        detail=divergence.detail,
                        sql=spec.render(),
                        minimized_sql=minimized.render(),
                    )
                )
                if fail_fast:
                    break
            if progress is not None:
                progress(index + 1, report)
    return report


def _same_kind(
    oracle: DifferentialOracle, original: Divergence
) -> Callable[[QuerySpec], bool]:
    def still_fails(spec: QuerySpec) -> bool:
        candidate = oracle.check(spec.render())
        return candidate is not None and candidate.kind == original.kind

    return still_fails
