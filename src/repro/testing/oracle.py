"""Differential oracle: one query, sixteen answers, zero tolerance.

Each query runs across the full configuration matrix

    {row, batch, compiled-python, compiled-numpy} engine
        × {fusion on, off} × {cache cold, warm replay}

— sixteen cells, every one with ``validate_plans=True`` so the
per-rule plan invariant validator is armed.  ``worker_counts`` adds a
parallel-execution axis: for each count ``n > 1`` the batch engine
re-runs the query at ``workers=n`` (fusion on/off × cold/warm) against
a shared persistent fragment worker pool, and its ``bytes_scanned``
must match the serial batch cell exactly — fragment scheduling, retry
and metric merging may not perturb rows *or* accounting.  The cold/warm dimension
comes from executing the query twice in a fresh cache-enabled session:
the first run populates the cross-query plan cache, the second replays
it.  The two compiled cells pin both vector representations of the
pipeline compiler (repro.engine.compiled); compiled-numpy is skipped
when NumPy is unavailable or disabled, leaving twelve cells.

A query *passes* when all cells produce the same row multiset (floats
canonicalized to 10 significant digits — fusion and NumPy reductions
legitimately reorder float accumulation) or all fail with the same
benign error class (the generator occasionally produces SQL the binder
rejects; that is uniform and expected).  Everything else is a
:class:`Divergence`:

* ``rows``  — cells disagree on the result multiset;
* ``error`` — cells disagree on outcome/error class, or agree on an
  error class that should never happen (ExecutionError, PlanError …);
* ``validator`` — the plan invariant validator fired (OptimizerError);
* ``analysis`` — the abstract interpreter's static column facts
  (repro.algebra.analysis) contradicted the rows a cell actually
  produced: a value outside its derived bounds, a NULL in a column
  proved non-nullable, a duplicate under a derived key …;
* ``crash`` — a non-ReproError exception escaped the engine.

The ``analysis`` dimension makes the fuzzer a soundness oracle for the
abstract interpreter itself: every one of the sixteen cells checks its
real output against the facts derived from its own optimized plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.analysis import verify_facts
from repro.engine.session import Session
from repro.engine.vectors import numpy_enabled
from repro.errors import BindingError, OptimizerError, ReproError, SqlSyntaxError
from repro.optimizer.config import OptimizerConfig
from repro.storage.columnar import Store

#: Error classes that may legitimately be raised for generated SQL, as
#: long as every cell agrees: the query never started executing.
BENIGN_ERRORS = ("SqlSyntaxError", "BindingError")

#: Significant digits floats are canonicalized to before comparison.
FLOAT_DIGITS = 10


@dataclass
class CellOutcome:
    """What one configuration cell produced for a query."""

    rows: list[tuple] | None
    error: str | None = None  # error class name; "crash:<Type>" for non-Repro
    message: str = ""
    #: Scan accounting, compared exactly between parallel cells and
    #: their serial counterparts (fragment metric merging must be
    #: lossless, not just row-equivalent).
    bytes_scanned: float | None = None

    @property
    def signature(self) -> str:
        return "rows" if self.error is None else self.error


@dataclass
class Divergence:
    """A failed differential check."""

    sql: str
    kind: str  # "rows" | "error" | "validator" | "analysis" | "crash"
    detail: str
    cells: dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [f"[{self.kind}] {self.detail}", f"  sql: {self.sql}"]
        for cell, sig in self.cells.items():
            lines.append(f"  {cell}: {sig}")
        return "\n".join(lines)


def canonical_value(value: object) -> object:
    """Floats rounded to FLOAT_DIGITS significant digits; everything
    else unchanged.  Fusion changes plan shapes and therefore float
    accumulation order, so last-ulp differences are not divergences."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        return float(f"{value:.{FLOAT_DIGITS}g}")
    return value


def canonical_rows(rows: list[tuple]) -> list[tuple]:
    """A canonical multiset representation: per-value float rounding,
    then a total order over rows (None sorts last per column)."""
    canon = [tuple(canonical_value(v) for v in row) for row in rows]
    return sorted(canon, key=lambda r: tuple((v is None, str(v)) for v in r))


class DifferentialOracle:
    """Runs queries across the full config matrix against one store."""

    def __init__(
        self,
        store: Store,
        batch_rows: int = 128,
        analysis: bool = True,
        worker_counts: tuple[int, ...] = (),
        cost_axis: bool = False,
    ):
        self.store = store
        self.batch_rows = batch_rows
        #: When set, every successful cell also checks its rows against
        #: the static column facts derived from its optimized plan.
        self.analysis = analysis
        #: Costed-vs-heuristic axis (DESIGN.md §15): re-run every query
        #: on the batch engine with ``cost_based=True`` (fusion on/off
        #: × cold/warm).  Cost-based selection changes which rewrites
        #: fire, never what a query returns — these cells are held to
        #: the same row-identical bar as every other cell.
        self.cost_axis = cost_axis
        #: Extra parallel-execution cells: for each ``n > 1`` the batch
        #: engine re-runs every query at ``workers=n`` (fusion on/off ×
        #: cold/warm), sharing one persistent worker pool per count so
        #: the fork cost amortizes across the whole campaign.  Rows and
        #: ``bytes_scanned`` must match the serial cells exactly.
        self.worker_counts = tuple(n for n in worker_counts if n > 1)
        self._pools: dict[int, object] = {}
        #: Status of the most recent ``check`` call: "ok", "benign" (a
        #: uniform parse/bind error), or "divergence".  Drivers read it
        #: for reporting; it carries no oracle state.
        self.last_status = "ok"
        self.last_error_class: str | None = None

    # -- one cell ----------------------------------------------------------

    #: The engine axis: display label → OptimizerConfig overrides.
    ENGINE_AXIS = (
        ("row", {"engine": "row"}),
        ("batch", {"engine": "batch"}),
        ("compiled-python", {"engine": "compiled", "vectors": "python"}),
        ("compiled-numpy", {"engine": "compiled", "vectors": "numpy"}),
    )

    def _engines(self):
        for label, overrides in self.ENGINE_AXIS:
            if label == "compiled-numpy" and not numpy_enabled():
                continue  # fallback-only environment: cell is redundant
            yield label, overrides

    def _config(self, overrides: dict, fusion: bool) -> OptimizerConfig:
        return OptimizerConfig(
            enable_fusion=fusion,
            enable_plan_cache=True,
            validate_plans=True,
            batch_rows=self.batch_rows,
            **overrides,
        )

    def _pool(self, workers: int):
        """The shared persistent worker pool for ``workers`` (created
        on first use, closed by :meth:`close`)."""
        pool = self._pools.get(workers)
        if pool is None:
            from repro.engine.parallel import WorkerPool

            pool = WorkerPool(self.store, workers)
            self._pools[workers] = pool
        return pool

    def close(self) -> None:
        """Shut down the shared worker pools (idempotent)."""
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "DifferentialOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _run_once(self, session: Session, sql: str) -> CellOutcome:
        try:
            result = session.execute(sql)
            if self.analysis:
                violations = verify_facts(
                    result.optimized_plan, result.rows, session.catalog
                )
                if violations:
                    return CellOutcome(
                        None,
                        error="AnalysisViolation",
                        message="; ".join(violations),
                    )
            return CellOutcome(
                rows=canonical_rows(result.rows),
                bytes_scanned=result.metrics.bytes_scanned,
            )
        except (SqlSyntaxError, BindingError) as exc:
            return CellOutcome(None, error=type(exc).__name__, message=str(exc))
        except ReproError as exc:
            return CellOutcome(None, error=type(exc).__name__, message=str(exc))
        except RecursionError as exc:
            return CellOutcome(None, error="crash:RecursionError", message=str(exc))
        except Exception as exc:  # noqa: BLE001 - the whole point of the oracle
            return CellOutcome(
                None, error=f"crash:{type(exc).__name__}", message=str(exc)
            )

    # -- the matrix --------------------------------------------------------

    def run_matrix(self, sql: str) -> dict[str, CellOutcome]:
        """All cells for one query (sixteen; twelve without NumPy),
        plus four parallel cells per entry in ``worker_counts``."""
        outcomes: dict[str, CellOutcome] = {}
        for engine, overrides in self._engines():
            for fusion in (False, True):
                session = Session(self.store, self._config(overrides, fusion))
                label = f"{engine}/{'fusion' if fusion else 'baseline'}"
                outcomes[f"{label}/cold"] = self._run_once(session, sql)
                outcomes[f"{label}/warm"] = self._run_once(session, sql)
        if self.cost_axis:
            for fusion in (False, True):
                session = Session(
                    self.store,
                    self._config({"engine": "batch", "cost_based": True}, fusion),
                )
                label = f"batch-costed/{'fusion' if fusion else 'baseline'}"
                outcomes[f"{label}/cold"] = self._run_once(session, sql)
                outcomes[f"{label}/warm"] = self._run_once(session, sql)
        for workers in self.worker_counts:
            overrides = {
                "engine": "batch",
                "workers": workers,
                "cache_shards": 4,
            }
            for fusion in (False, True):
                session = Session(
                    self.store,
                    self._config(overrides, fusion),
                    worker_pool=self._pool(workers),
                )
                label = f"batch-w{workers}/{'fusion' if fusion else 'baseline'}"
                outcomes[f"{label}/cold"] = self._run_once(session, sql)
                outcomes[f"{label}/warm"] = self._run_once(session, sql)
        return outcomes

    def check(self, sql: str) -> Divergence | None:
        """None when all cells agree benignly; a Divergence otherwise."""
        outcomes = self.run_matrix(sql)
        signatures = {cell: out.signature for cell, out in outcomes.items()}
        distinct = set(signatures.values())
        self.last_status = "ok"
        self.last_error_class = None

        if len(distinct) > 1:
            self.last_status = "divergence"
            detail = "cells disagree on outcome: " + ", ".join(sorted(distinct))
            kind = "error"
            if any(s.startswith("crash:") for s in distinct):
                kind = "crash"
            elif "AnalysisViolation" in distinct:
                kind = "analysis"
            return Divergence(sql, kind, detail, signatures)

        (signature,) = distinct
        if signature != "rows":
            first = next(iter(outcomes.values()))
            if signature in BENIGN_ERRORS:
                self.last_status = "benign"
                self.last_error_class = signature
                return None
            self.last_status = "divergence"
            if signature == OptimizerError.__name__:
                kind = "validator"
            elif signature == "AnalysisViolation":
                kind = "analysis"
            elif signature.startswith("crash:"):
                kind = "crash"
            else:
                kind = "error"
            return Divergence(
                sql, kind, f"all cells failed with {signature}: {first.message}",
                signatures,
            )

        reference_cell = "row/baseline/cold"
        reference = outcomes[reference_cell].rows
        for cell, outcome in outcomes.items():
            if outcome.rows != reference:
                self.last_status = "divergence"
                detail = (
                    f"{cell} disagrees with {reference_cell}: "
                    f"{_diff_summary(reference, outcome.rows)}"
                )
                cells = {
                    c: f"{len(o.rows)} rows" for c, o in outcomes.items()
                }
                return Divergence(sql, "rows", detail, cells)
        for workers in self.worker_counts:
            # Fragment metric merging must be lossless: a parallel cell
            # that scans more (or fewer) bytes than its serial twin has
            # broken exact accounting even if the rows agree.
            for variant in ("baseline", "fusion"):
                for phase in ("cold", "warm"):
                    serial = outcomes[f"batch/{variant}/{phase}"]
                    par = outcomes[f"batch-w{workers}/{variant}/{phase}"]
                    if par.bytes_scanned != serial.bytes_scanned:
                        self.last_status = "divergence"
                        return Divergence(
                            sql,
                            "rows",
                            f"batch-w{workers}/{variant}/{phase} scanned "
                            f"{par.bytes_scanned} bytes vs serial "
                            f"{serial.bytes_scanned}",
                            {
                                c: f"{o.bytes_scanned} bytes"
                                for c, o in outcomes.items()
                            },
                        )
        return None


def _diff_summary(expected: list[tuple], actual: list[tuple]) -> str:
    if len(expected) != len(actual):
        return f"{len(expected)} vs {len(actual)} rows"
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return f"first differing row {i}: {e!r} vs {a!r}"
    return "rows differ"
