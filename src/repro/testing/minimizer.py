"""Delta-debugging minimizer for fuzzer-found failing queries.

Greedy structural shrinking over :class:`~repro.testing.generator.
QuerySpec`: each step proposes removing one element (a UNION branch, a
CTE, a join, a WHERE conjunct, a select item, a group key, an
aggregate, HAVING, DISTINCT, ORDER BY/LIMIT) and keeps the shrunk spec
iff the caller's ``still_fails`` predicate holds.  On success the scan
restarts from the smaller spec, iterating to a fixpoint.

Shrink moves are deliberately sloppy — they may produce SQL that no
longer binds (e.g. dropping a join whose columns the select list still
references).  That is fine: an unbindable query fails *uniformly*
across the oracle's matrix with a benign error class, which changes
the failure signature, so ``still_fails`` rejects the shrink.  The
oracle is the validity check; the minimizer stays simple.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from repro.testing.generator import QuerySpec, SelectBlock


def minimize(
    spec: QuerySpec,
    still_fails: Callable[[QuerySpec], bool],
    max_checks: int = 400,
) -> QuerySpec:
    """The smallest spec (under greedy one-element deletion) that still
    satisfies ``still_fails``.  ``max_checks`` bounds oracle calls."""
    spec = copy.deepcopy(spec)
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _shrinks(spec):
            checks += 1
            if checks > max_checks:
                break
            if still_fails(candidate):
                spec = candidate
                progress = True
                break
    return spec


def _shrinks(spec: QuerySpec) -> Iterator[QuerySpec]:
    """All one-step shrinks of ``spec``, biggest deletions first."""
    if len(spec.branches) > 1:
        for i in range(len(spec.branches)):
            shrunk = copy.deepcopy(spec)
            del shrunk.branches[i]
            yield shrunk
    for i in range(len(spec.ctes)):
        shrunk = copy.deepcopy(spec)
        del shrunk.ctes[i]
        yield shrunk
    if spec.limit is not None:
        shrunk = copy.deepcopy(spec)
        shrunk.limit = None
        yield shrunk
    if spec.order_by:
        shrunk = copy.deepcopy(spec)
        shrunk.order_by = False
        shrunk.limit = None
        yield shrunk

    for path, block in _blocks(spec):
        yield from _block_shrinks(spec, path, block)


def _blocks(spec: QuerySpec) -> list[tuple[tuple, SelectBlock]]:
    """(path, block) pairs for every SelectBlock in the spec, including
    CTE bodies and derived-table join sources (one level deep)."""
    found: list[tuple[tuple, SelectBlock]] = []
    for i, block in enumerate(spec.branches):
        found.append((("branch", i), block))
        for j, join in enumerate(block.joins):
            if join.query is not None:
                found.append((("branch", i, "join", j), join.query))
    for i, (_, block) in enumerate(spec.ctes):
        found.append((("cte", i), block))
        for j, join in enumerate(block.joins):
            if join.query is not None:
                found.append((("cte", i, "join", j), block.joins[j].query))
    return found


def _resolve(spec: QuerySpec, path: tuple) -> SelectBlock:
    if path[0] == "branch":
        block = spec.branches[path[1]]
    else:
        block = spec.ctes[path[1]][1]
    if len(path) > 2:  # ("branch"|"cte", i, "join", j)
        block = block.joins[path[3]].query
    return block


def _block_shrinks(
    spec: QuerySpec, path: tuple, block: SelectBlock
) -> Iterator[QuerySpec]:
    def variant(mutate: Callable[[SelectBlock], None]) -> QuerySpec:
        shrunk = copy.deepcopy(spec)
        mutate(_resolve(shrunk, path))
        return shrunk

    for i in range(len(block.joins)):
        yield variant(lambda b, i=i: b.joins.pop(i))
    if len(block.where) > 1:
        yield variant(lambda b: b.where.clear())
    for i in range(len(block.where)):
        yield variant(lambda b, i=i: b.where.pop(i))
    for i in range(len(block.having)):
        yield variant(lambda b, i=i: b.having.pop(i))
    for i in range(len(block.aggregates)):
        yield variant(lambda b, i=i: b.aggregates.pop(i))
    for i, agg in enumerate(block.aggregates):
        if agg.mask is not None:
            yield variant(lambda b, i=i: setattr(b.aggregates[i], "mask", None))
        if agg.distinct:
            yield variant(lambda b, i=i: setattr(b.aggregates[i], "distinct", False))
    for i in range(len(block.group_by)):
        yield variant(lambda b, i=i: b.group_by.pop(i))
    if len(block.select) > 1:
        for i in range(len(block.select)):
            yield variant(lambda b, i=i: b.select.pop(i))
    if block.distinct:
        yield variant(lambda b: setattr(b, "distinct", False))
